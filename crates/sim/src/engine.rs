use crate::age_matrix::{AgeMatrix, BitSet};
use crate::bpu::{BpuConfig, BranchPredictionUnit};
use crate::cancel::AbortReason;
use crate::config::{SchedulerKind, SimConfig};
use crate::error::{DeadlockReport, HeadState, SimError};
use crate::snapshot::{CheckpointSink, RestoreAudit, SimSnapshot};
use crate::stats::{PipeRecord, SimResult, UpcTimeline};
use crate::wcodec::{push_opt_u64, push_opt_usize, push_section, Reader};
use crisp_isa::{FuClass, Layout, Pc, Program, Trace};
use crisp_mem::{HitLevel, MemoryHierarchy};
use crisp_obs::{
    EventKind, FillLevel, HostProf, Phase as HostPhase, StallClass, TelemetryInputs, Tracer,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One in-flight instruction (a ROB entry).
#[derive(Clone, Debug)]
struct Entry {
    pc: Pc,
    fu: FuClass,
    latency: u64,
    unpipelined: bool,
    critical: bool,
    is_load: bool,
    is_store: bool,
    mispredicted: bool,
    /// Producer instructions, as absolute dynamic sequence numbers.
    deps: [Option<u64>; 3],
    /// Older overlapping store (sequence number) this load must wait for.
    mem_dep: Option<u64>,
    addr: u64,
    fetched_at: u64,
    visible_at: u64,
    issued_at: Option<u64>,
    complete_at: Option<u64>,
    rs_slot: Option<usize>,
    /// Cache level that served this load (set at issue; `None` until then
    /// and for non-loads). Drives stall attribution and trace annotation.
    fill: Option<FillLevel>,
}

/// A fetched instruction waiting in the decoupled fetch buffer.
#[derive(Clone, Copy, Debug)]
struct Fetched {
    trace_idx: usize,
    fetched_at: u64,
    visible_at: u64,
    mispredicted: bool,
}

/// The cycle-level out-of-order core simulator. See the crate docs for an
/// overview and an example.
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid; use
    /// [`Simulator::try_new`] to handle rejection gracefully.
    pub fn new(config: SimConfig) -> Simulator {
        Simulator::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a simulator, rejecting invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns the validation failure, naming the offending field.
    pub fn try_new(config: SimConfig) -> Result<Simulator, SimError> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates the execution of `trace` (the retired instruction stream
    /// of `program`) and returns the collected statistics.
    ///
    /// `critical` optionally marks instructions (indexed by [`Pc`]) as
    /// CRISP-critical; it also injects the one-byte instruction prefix into
    /// the code layout, so tagging affects the instruction cache exactly as
    /// in paper Section 5.7.
    ///
    /// # Panics
    ///
    /// Panics if `critical` is provided with a length different from
    /// `program.len()`, if the deadlock watchdog fires, or on internal
    /// invariant violations (bugs). Use [`Simulator::try_run`] to handle
    /// these as errors.
    pub fn run(&self, program: &Program, trace: &Trace, critical: Option<&[bool]>) -> SimResult {
        // Keep the historical panic message: tests and callers grep for it.
        if let Some(c) = critical {
            assert_eq!(c.len(), program.len(), "criticality map length mismatch");
        }
        self.try_run(program, trace, critical)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::run`], but reporting failures as [`SimError`] instead
    /// of panicking: a wrong-length criticality map, a watchdog-detected
    /// deadlock (with a [`DeadlockReport`] dump), or — under
    /// [`SimConfig::check_invariants`] — a machine-state inconsistency.
    ///
    /// # Errors
    ///
    /// See above; the simulation is abandoned at the failing cycle.
    pub fn try_run(
        &self,
        program: &Program,
        trace: &Trace,
        critical: Option<&[bool]>,
    ) -> Result<SimResult, SimError> {
        if let Some(c) = critical {
            if c.len() != program.len() {
                return Err(SimError::CriticalityMapLength {
                    expected: program.len(),
                    actual: c.len(),
                });
            }
        }
        let layout = program.layout(|pc| critical.is_some_and(|c| c[pc as usize]));
        let mut engine = Engine::new(&self.config, program, &layout, trace, critical);
        if let Some(snapshot) = &self.config.restore {
            engine.restore(snapshot)?;
        }
        engine.run()
    }

    /// Fault-tolerant variant of [`Simulator::try_run`] for running with
    /// criticality maps of *unknown provenance* (stale profiles, corrupted
    /// annotation files): `critical` may have any length. Bits beyond the
    /// program are ignored; PCs beyond the map are treated as non-critical.
    /// This is the graceful-degradation contract of the paper's hint bits —
    /// a wrong hint can only mis-prioritise, never break execution.
    ///
    /// # Errors
    ///
    /// Same runtime failures as [`Simulator::try_run`]; a length mismatch
    /// is no longer one of them.
    pub fn run_tolerant(
        &self,
        program: &Program,
        trace: &Trace,
        critical: &[bool],
    ) -> Result<SimResult, SimError> {
        let mut normalized = critical.to_vec();
        normalized.resize(program.len(), false);
        self.try_run(program, trace, Some(&normalized))
    }

    /// The determinism audit behind `--audit-restore`: runs the trace
    /// straight through while capturing a checkpoint roughly every
    /// `checkpoint_interval` cycles, then resumes a fresh machine from
    /// *every* captured checkpoint and verifies each resumed run finishes
    /// with byte-identical statistics (the full [`SimResult`] encoding,
    /// including per-PC maps and any recorded timelines).
    ///
    /// Checkpoints are emitted on the cancellation poll path, so a run
    /// shorter than [`SimConfig::cancel_check_interval`] cycles captures
    /// none and the audit trivially passes with zero verified checkpoints
    /// — callers that require coverage should check
    /// [`RestoreAudit::checkpoints_verified`].
    ///
    /// # Errors
    ///
    /// Propagates ordinary run failures, and reports
    /// [`SimError::RestoreAuditDivergence`] naming the first checkpoint
    /// whose resumed run diverged.
    pub fn audit_restore(
        &self,
        program: &Program,
        trace: &Trace,
        critical: Option<&[bool]>,
        checkpoint_interval: u64,
    ) -> Result<RestoreAudit, SimError> {
        let captured: Arc<Mutex<Vec<SimSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&captured);
        let mut cfg = self.config.clone();
        cfg.checkpoint_interval = Some(checkpoint_interval);
        cfg.checkpoint_sink = Some(CheckpointSink::new(move |s| {
            store.lock().expect("audit sink lock").push(s.clone());
        }));
        cfg.restore = None;
        let result = Simulator::try_new(cfg)?.try_run(program, trace, critical)?;
        let reference = result.snapshot_words();
        let snapshots = std::mem::take(&mut *captured.lock().expect("audit sink lock"));
        let mut checkpoints_verified = 0;
        for snapshot in snapshots {
            let checkpoint_cycle = snapshot.cycle;
            let mut cfg = self.config.clone();
            cfg.restore = Some(Arc::new(snapshot));
            let resumed = Simulator::try_new(cfg)?.try_run(program, trace, critical)?;
            if resumed.snapshot_words() != reference {
                return Err(SimError::RestoreAuditDivergence { checkpoint_cycle });
            }
            checkpoints_verified += 1;
        }
        Ok(RestoreAudit {
            cycles: result.cycles,
            checkpoints_verified,
            result,
        })
    }
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    program: &'a Program,
    layout: &'a Layout,
    trace: &'a [crisp_isa::DynInst],
    critical: Option<&'a [bool]>,

    now: u64,
    mem: MemoryHierarchy,
    bpu: BranchPredictionUnit,

    // Frontend state.
    fetch_idx: usize,
    fetch_buffer: VecDeque<Fetched>,
    fetch_blocked_by: Option<u64>,
    fetch_blocked_until: u64,
    icache_wait: Option<(u64, u64)>, // (line, ready cycle)
    current_line: Option<u64>,
    ftq_cursor: usize,
    last_prefetched_line: Option<u64>,

    // Window state.
    rob: VecDeque<Entry>,
    rob_base: u64, // sequence number of rob[0]
    next_seq: u64,
    reg_producer: [Option<u64>; crisp_isa::Reg::COUNT],
    store_queue: VecDeque<(u64, u64, u64)>, // (seq, addr, width)
    loads_in_flight: usize,
    stores_in_flight: usize,

    // Scheduler state.
    rs: Vec<Option<u64>>, // slot -> seq
    rs_free: Vec<usize>,
    age: AgeMatrix,
    rr_cursor: usize,

    // Execution resources.
    alu_busy: Vec<u64>,
    outstanding_dram: Vec<u64>,

    // Statistics.
    res: SimResult,

    // Host-side self-profiler (`HostProf::Off` unless `cfg.hostprof`).
    prof: HostProf,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a SimConfig,
        program: &'a Program,
        layout: &'a Layout,
        trace: &'a Trace,
        critical: Option<&'a [bool]>,
    ) -> Engine<'a> {
        Engine {
            cfg,
            program,
            layout,
            trace: trace.as_slice(),
            critical,
            now: 0,
            mem: MemoryHierarchy::new(cfg.memory),
            bpu: BranchPredictionUnit::new(BpuConfig::default()),
            fetch_idx: 0,
            fetch_buffer: VecDeque::with_capacity(cfg.fetch_queue_entries),
            fetch_blocked_by: None,
            fetch_blocked_until: 0,
            icache_wait: None,
            current_line: None,
            ftq_cursor: 0,
            last_prefetched_line: None,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rob_base: 0,
            next_seq: 0,
            reg_producer: [None; crisp_isa::Reg::COUNT],
            store_queue: VecDeque::new(),
            loads_in_flight: 0,
            stores_in_flight: 0,
            rs: vec![None; cfg.rs_entries],
            rs_free: (0..cfg.rs_entries).rev().collect(),
            age: AgeMatrix::new(cfg.rs_entries),
            rr_cursor: 0,
            alu_busy: vec![0; cfg.alu_ports],
            outstanding_dram: Vec::new(),
            res: SimResult {
                upc: UpcTimeline::default(),
                tracer: match cfg.tracer_capacity {
                    Some(cap) => Tracer::ring(cap),
                    None => Tracer::Off,
                },
                ..SimResult::default()
            },
            prof: HostProf::new(cfg.hostprof),
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let total = self.trace.len() as u64;
        // (retired, cycle) — seeded from the current state so a restored
        // run gives the watchdog a full grace period, not a stale epoch.
        let mut last_progress = (self.res.retired, self.now);
        let mut next_checkpoint = match self.cfg.checkpoint_interval {
            Some(interval) => self.now.saturating_add(interval),
            None => u64::MAX,
        };
        // The profiler clock starts here so construction/restore time is
        // excluded; each stage marks its own phase, and everything
        // between `enter(Other)` below and the next stage mark (poll
        // points, stall accounting, loop control) lands in `other`.
        self.prof.start();
        while self.res.retired < total {
            // Cooperative abort points, checked before the cycle's work so
            // a cancelled run stops without touching machine state again.
            if let Some(budget) = self.cfg.cycle_budget {
                if self.now >= budget {
                    return Err(SimError::CycleBudgetExhausted {
                        budget,
                        retired: self.res.retired,
                        total,
                    });
                }
            }
            if self.now.is_multiple_of(self.cfg.cancel_check_interval) {
                if let Some(reason) = self.cfg.cancel.as_ref().and_then(|t| t.should_abort()) {
                    return Err(match reason {
                        AbortReason::Cancelled => SimError::Cancelled {
                            cycle: self.now,
                            retired: self.res.retired,
                            total,
                        },
                        AbortReason::DeadlineExceeded => SimError::DeadlineExceeded {
                            cycle: self.now,
                            retired: self.res.retired,
                            total,
                        },
                    });
                }
                if let Some(beacon) = &self.cfg.progress {
                    beacon.publish(self.now, self.res.retired);
                }
                // Telemetry rides the same poll: the sample threshold lives
                // in snapshotted state (the log's delta baseline), so a
                // restored run samples at the same cycles the
                // straight-through run would. Sampling happens *before*
                // checkpoint emission so the checkpoint carries the sample.
                if let Some(k) = self.cfg.telemetry_interval {
                    if self.now >= self.res.telemetry.last_cycle().saturating_add(k) {
                        let inputs = self.telemetry_inputs();
                        self.res.telemetry.record(inputs);
                    }
                }
                // Checkpoints ride the same cooperative poll: emission is
                // quantised to the poll cadence, and the state captured
                // here is exactly the state a restored run resumes from.
                if self.now >= next_checkpoint {
                    next_checkpoint = self
                        .now
                        .saturating_add(self.cfg.checkpoint_interval.unwrap_or(u64::MAX));
                    if let Some(sink) = &self.cfg.checkpoint_sink {
                        sink.emit(&self.snapshot());
                    }
                }
            }
            let retired_now = self.commit();
            self.issue();
            self.dispatch();
            self.fetch();
            if self.cfg.fdip {
                self.fdip();
            }
            self.prof.enter(HostPhase::Other);
            // ROB-head stall accounting. Attribution charges the blocking
            // instruction's PC under exactly the same condition, so the
            // table's backend total equals `rob_head_stall_cycles` to the
            // cycle (the conservation invariant the tests assert).
            if let Some(head) = self.rob.front() {
                if head.complete_at.is_none_or(|c| c > self.now) {
                    self.res.rob_head_stall_cycles += 1;
                    if self.cfg.stall_attribution {
                        let class = Engine::classify_head_stall(head);
                        self.res.stall_table.charge(u64::from(head.pc), class);
                    }
                }
            } else if self.cfg.stall_attribution {
                // ROB empty: the frontend is starving the backend. Charge
                // the instruction fetch is (or will be) working on; tallied
                // separately from the backend classes.
                let idx = self
                    .fetch_buffer
                    .front()
                    .map_or(self.fetch_idx, |f| f.trace_idx);
                if idx < self.trace.len() {
                    self.res
                        .stall_table
                        .charge(u64::from(self.trace[idx].pc), StallClass::Frontend);
                }
            }
            if self.cfg.record_upc_timeline {
                self.res.upc.push(retired_now);
            }
            if self.cfg.check_invariants {
                self.check_invariants()?;
            }
            self.now += 1;
            // Watchdog against deadlock bugs.
            if self.res.retired > last_progress.0 {
                last_progress = (self.res.retired, self.now);
            } else if self.now - last_progress.1 >= self.cfg.watchdog_cycles {
                return Err(SimError::Deadlock(Box::new(
                    self.deadlock_report(self.now - last_progress.1, total),
                )));
            }
        }
        if self.cfg.check_invariants {
            self.check_drained()?;
        }
        self.res.cycles = self.now;
        let (cb, cm, im, rm) = self.bpu.stats();
        self.res.cond_branches = cb;
        self.res.cond_mispredicts = cm;
        self.res.indirect_mispredicts = im + rm;
        self.res.mem = self.mem.stats();
        self.res.hostprof = self.prof.finish(self.now, self.res.retired);
        Ok(self.res)
    }

    // ---- observability ---------------------------------------------------

    /// Which stall class the blocking ROB-head instruction belongs to.
    fn classify_head_stall(head: &Entry) -> StallClass {
        if head.issued_at.is_none() {
            // Not yet picked by the scheduler: either fetch is re-steering
            // around it (mispredicted) or it is waiting on operands/ports.
            if head.mispredicted {
                StallClass::BranchMispredict
            } else {
                StallClass::Fu
            }
        } else if head.is_load {
            match head.fill {
                Some(FillLevel::Dram) => StallClass::LoadDram,
                Some(FillLevel::Llc) => StallClass::LoadLlc,
                // L1 hits and store-to-load forwards both count as L1.
                _ => StallClass::LoadL1,
            }
        } else if head.is_store {
            StallClass::Store
        } else if head.mispredicted {
            StallClass::BranchMispredict
        } else {
            StallClass::Fu
        }
    }

    /// One cumulative-counter reading for the interval-telemetry log (the
    /// log differences consecutive readings itself).
    fn telemetry_inputs(&self) -> TelemetryInputs {
        let (cb, cm, _, _) = self.bpu.stats();
        let mem = self.mem.stats();
        let pf = mem.prefetch_totals();
        TelemetryInputs {
            cycle: self.now,
            retired: self.res.retired,
            cond_branches: cb,
            mispredicts: cm,
            l1i_accesses: mem.l1i.accesses,
            l1i_misses: mem.l1i.misses,
            l1d_accesses: mem.l1d.accesses,
            l1d_misses: mem.l1d.misses,
            llc_accesses: mem.llc.accesses,
            llc_misses: mem.llc.misses,
            issued_critical: self.res.issued_critical,
            issued_noncritical: self.res.issued_noncritical,
            pf_issued: pf.issued,
            pf_useful: pf.useful,
            pf_late: pf.late,
            rob: self.rob.len() as u64,
            rs: self.age.occupancy() as u64,
            loads: self.loads_in_flight as u64,
            stores: self.stores_in_flight as u64,
            mshr: self.mem.inflight_fills() as u64,
            dram_outstanding: self
                .outstanding_dram
                .iter()
                .filter(|&&c| c > self.now)
                .count() as u64,
        }
    }

    // ---- checkpoint/restore ----------------------------------------------

    /// Captures the complete mutable machine state. Taken between cycles
    /// (on the poll path, before any of the cycle's stages run), so the
    /// snapshot is a consistent cut: restoring it and finishing the run
    /// retraces the straight-through execution cycle for cycle.
    fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            cycle: self.now,
            sections: vec![
                ("engine".to_string(), self.engine_words()),
                ("mem".to_string(), self.mem.snapshot_words()),
                ("bpu".to_string(), self.bpu.snapshot_words()),
                ("stats".to_string(), self.res.snapshot_words()),
            ],
        }
    }

    /// Applies a snapshot to a freshly constructed engine. On error the
    /// engine must be discarded.
    fn restore(&mut self, snapshot: &SimSnapshot) -> Result<(), SimError> {
        fn wrap(section: &str) -> impl Fn(String) -> SimError + '_ {
            move |message| SimError::SnapshotRestore {
                section: section.to_string(),
                message,
            }
        }
        let section = |name: &str| {
            snapshot
                .section(name)
                .ok_or_else(|| SimError::SnapshotRestore {
                    section: name.to_string(),
                    message: "section missing from snapshot".to_string(),
                })
        };
        self.restore_engine_words(section("engine")?)
            .map_err(wrap("engine"))?;
        self.mem
            .restore_words(section("mem")?)
            .map_err(wrap("mem"))?;
        self.bpu
            .restore_words(section("bpu")?)
            .map_err(wrap("bpu"))?;
        self.res
            .restore_words(section("stats")?)
            .map_err(wrap("stats"))?;
        if self.now != snapshot.cycle {
            return Err(SimError::SnapshotRestore {
                section: "engine".to_string(),
                message: format!(
                    "engine cycle {} disagrees with snapshot header cycle {}",
                    self.now, snapshot.cycle
                ),
            });
        }
        Ok(())
    }

    /// Serialises the engine-local state (frontend, window, scheduler,
    /// execution resources) as the snapshot's `engine` section.
    fn engine_words(&self) -> Vec<u64> {
        let mut w = vec![self.now, self.trace.len() as u64, self.fetch_idx as u64];
        w.push(self.fetch_buffer.len() as u64);
        for f in &self.fetch_buffer {
            w.extend_from_slice(&[
                f.trace_idx as u64,
                f.fetched_at,
                f.visible_at,
                u64::from(f.mispredicted),
            ]);
        }
        push_opt_u64(&mut w, self.fetch_blocked_by);
        w.push(self.fetch_blocked_until);
        match self.icache_wait {
            Some((line, ready)) => w.extend_from_slice(&[1, line, ready]),
            None => w.extend_from_slice(&[0, 0, 0]),
        }
        push_opt_u64(&mut w, self.current_line);
        w.push(self.ftq_cursor as u64);
        push_opt_u64(&mut w, self.last_prefetched_line);
        w.push(self.rob_base);
        w.push(self.next_seq);
        w.push(self.rob.len() as u64);
        for e in &self.rob {
            w.push(u64::from(e.pc));
            w.push(match e.fu {
                FuClass::Alu => 0,
                FuClass::Load => 1,
                FuClass::Store => 2,
            });
            w.push(e.latency);
            // Bits 0..=4: booleans; bit 5: fill present; bits 6..=7: fill
            // level code.
            w.push(
                u64::from(e.unpipelined)
                    | u64::from(e.critical) << 1
                    | u64::from(e.is_load) << 2
                    | u64::from(e.is_store) << 3
                    | u64::from(e.mispredicted) << 4
                    | match e.fill {
                        Some(level) => 1 << 5 | level.code() << 6,
                        None => 0,
                    },
            );
            for d in e.deps {
                push_opt_u64(&mut w, d);
            }
            push_opt_u64(&mut w, e.mem_dep);
            w.extend_from_slice(&[e.addr, e.fetched_at, e.visible_at]);
            push_opt_u64(&mut w, e.issued_at);
            push_opt_u64(&mut w, e.complete_at);
            push_opt_usize(&mut w, e.rs_slot);
        }
        for p in self.reg_producer {
            push_opt_u64(&mut w, p);
        }
        w.push(self.store_queue.len() as u64);
        for &(seq, addr, width) in &self.store_queue {
            w.extend_from_slice(&[seq, addr, width]);
        }
        w.push(self.loads_in_flight as u64);
        w.push(self.stores_in_flight as u64);
        w.push(self.rs.len() as u64);
        for s in &self.rs {
            push_opt_u64(&mut w, *s);
        }
        w.push(self.rs_free.len() as u64);
        w.extend(self.rs_free.iter().map(|&s| s as u64));
        push_section(&mut w, self.age.snapshot_words());
        w.push(self.rr_cursor as u64);
        w.push(self.alu_busy.len() as u64);
        w.extend_from_slice(&self.alu_busy);
        w.push(self.outstanding_dram.len() as u64);
        w.extend_from_slice(&self.outstanding_dram);
        w
    }

    /// Restores the `engine` section, validating the structural echoes
    /// (trace length, window/port geometry) against the live inputs so a
    /// snapshot from a different workload or machine shape is rejected.
    fn restore_engine_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = Reader::new(words, "engine");
        self.now = r.u64()?;
        let trace_len = r.usize()?;
        if trace_len != self.trace.len() {
            return Err(format!(
                "engine snapshot: trace of {trace_len} instructions, expected {} — \
                 snapshot was taken on a different workload",
                self.trace.len()
            ));
        }
        self.fetch_idx = r.usize()?;
        if self.fetch_idx > self.trace.len() {
            return Err(format!(
                "engine snapshot: fetch index {} beyond trace end",
                self.fetch_idx
            ));
        }
        let n = r.count()?;
        if n > self.cfg.fetch_queue_entries {
            return Err(format!("engine snapshot: fetch buffer over capacity ({n})"));
        }
        self.fetch_buffer.clear();
        for _ in 0..n {
            let trace_idx = r.usize()?;
            if trace_idx >= self.trace.len() {
                return Err(format!(
                    "engine snapshot: fetched trace index {trace_idx} OOB"
                ));
            }
            self.fetch_buffer.push_back(Fetched {
                trace_idx,
                fetched_at: r.u64()?,
                visible_at: r.u64()?,
                mispredicted: r.bool()?,
            });
        }
        self.fetch_blocked_by = r.opt_u64()?;
        self.fetch_blocked_until = r.u64()?;
        let waiting = r.bool()?;
        let line = r.u64()?;
        let ready = r.u64()?;
        self.icache_wait = waiting.then_some((line, ready));
        self.current_line = r.opt_u64()?;
        self.ftq_cursor = r.usize()?;
        self.last_prefetched_line = r.opt_u64()?;
        self.rob_base = r.u64()?;
        self.next_seq = r.u64()?;
        let n = r.count()?;
        if n > self.cfg.rob_entries {
            return Err(format!("engine snapshot: ROB over capacity ({n})"));
        }
        if self.next_seq != self.rob_base + n as u64 {
            return Err(format!(
                "engine snapshot: next_seq {} inconsistent with rob_base {} + {n} entries",
                self.next_seq, self.rob_base
            ));
        }
        self.rob.clear();
        for _ in 0..n {
            let pc = r.u64()?;
            let pc = Pc::try_from(pc).map_err(|_| format!("engine snapshot: bad pc {pc}"))?;
            let fu = match r.u64()? {
                0 => FuClass::Alu,
                1 => FuClass::Load,
                2 => FuClass::Store,
                v => return Err(format!("engine snapshot: bad FU class {v}")),
            };
            let latency = r.u64()?;
            let flags = r.u64()?;
            if flags >> 8 != 0 {
                return Err(format!("engine snapshot: bad entry flags {flags:#x}"));
            }
            let fill = if flags >> 5 & 1 != 0 {
                Some(
                    FillLevel::from_code(flags >> 6 & 0b11)
                        .map_err(|e| format!("engine snapshot: {e}"))?,
                )
            } else if flags >> 6 != 0 {
                return Err(format!(
                    "engine snapshot: fill level bits set without presence bit in {flags:#x}"
                ));
            } else {
                None
            };
            let mut deps = [None; 3];
            for d in &mut deps {
                *d = r.opt_u64()?;
            }
            let mem_dep = r.opt_u64()?;
            let addr = r.u64()?;
            let fetched_at = r.u64()?;
            let visible_at = r.u64()?;
            let issued_at = r.opt_u64()?;
            let complete_at = r.opt_u64()?;
            let rs_slot = r.opt_usize()?;
            if let Some(slot) = rs_slot {
                if slot >= self.cfg.rs_entries {
                    return Err(format!("engine snapshot: RS slot {slot} OOB"));
                }
            }
            self.rob.push_back(Entry {
                pc,
                fu,
                latency,
                unpipelined: flags & 1 != 0,
                critical: flags >> 1 & 1 != 0,
                is_load: flags >> 2 & 1 != 0,
                is_store: flags >> 3 & 1 != 0,
                mispredicted: flags >> 4 & 1 != 0,
                deps,
                mem_dep,
                addr,
                fetched_at,
                visible_at,
                issued_at,
                complete_at,
                rs_slot,
                fill,
            });
        }
        for p in &mut self.reg_producer {
            *p = r.opt_u64()?;
        }
        let n = r.count()?;
        self.store_queue.clear();
        for _ in 0..n {
            let seq = r.u64()?;
            let addr = r.u64()?;
            let width = r.u64()?;
            self.store_queue.push_back((seq, addr, width));
        }
        self.loads_in_flight = r.usize()?;
        self.stores_in_flight = r.usize()?;
        let n = r.usize()?;
        if n != self.cfg.rs_entries {
            return Err(format!(
                "engine snapshot: {n} RS slots, expected {}",
                self.cfg.rs_entries
            ));
        }
        for s in &mut self.rs {
            *s = r.opt_u64()?;
        }
        let n = r.count()?;
        if n > self.cfg.rs_entries {
            return Err(format!("engine snapshot: free list over capacity ({n})"));
        }
        self.rs_free.clear();
        for _ in 0..n {
            let slot = r.usize()?;
            if slot >= self.cfg.rs_entries {
                return Err(format!("engine snapshot: free slot {slot} OOB"));
            }
            self.rs_free.push(slot);
        }
        self.age.restore_words(r.section()?)?;
        self.rr_cursor = r.usize()?;
        let n = r.usize()?;
        if n != self.cfg.alu_ports {
            return Err(format!(
                "engine snapshot: {n} ALU ports, expected {}",
                self.cfg.alu_ports
            ));
        }
        for b in &mut self.alu_busy {
            *b = r.u64()?;
        }
        let n = r.count()?;
        self.outstanding_dram.clear();
        for _ in 0..n {
            self.outstanding_dram.push(r.u64()?);
        }
        r.finish()
    }

    /// Snapshots the stuck machine for the watchdog's diagnostic dump.
    fn deadlock_report(&self, stalled_for: u64, total: u64) -> DeadlockReport {
        let rob_head = self.rob.front().map(|h| {
            let state = match (h.issued_at, h.complete_at) {
                (None, _) => HeadState::WaitingToIssue,
                (Some(_), Some(c)) if c <= self.now => HeadState::ReadyToRetire,
                _ => HeadState::Executing,
            };
            (h.pc, state)
        });
        let oldest_unissued = self
            .rob
            .iter()
            .enumerate()
            .find(|(_, e)| e.issued_at.is_none())
            .map(|(i, e)| (self.rob_base + i as u64, e.pc));
        DeadlockReport {
            cycle: self.now,
            stalled_for,
            retired: self.res.retired,
            total,
            rob_head,
            rob: (self.rob.len(), self.cfg.rob_entries),
            rs: (self.age.occupancy(), self.cfg.rs_entries),
            loads: (self.loads_in_flight, self.cfg.load_buffer),
            stores: (self.stores_in_flight, self.cfg.store_buffer),
            oldest_unissued,
            recent_events: self.res.tracer.tail(256),
        }
    }

    /// The opt-in per-cycle invariant checker (`--check`): stage ordering,
    /// occupancy bounds and RS/age-matrix cross-consistency.
    fn check_invariants(&self) -> Result<(), SimError> {
        let fail = |message: String| {
            Err(SimError::InvariantViolation {
                cycle: self.now,
                message,
            })
        };
        // Occupancy bounds.
        if self.rob.len() > self.cfg.rob_entries {
            return fail(format!(
                "ROB over capacity: {} > {}",
                self.rob.len(),
                self.cfg.rob_entries
            ));
        }
        if self.loads_in_flight > self.cfg.load_buffer {
            return fail(format!(
                "load buffer over capacity: {} > {}",
                self.loads_in_flight, self.cfg.load_buffer
            ));
        }
        if self.stores_in_flight > self.cfg.store_buffer {
            return fail(format!(
                "store buffer over capacity: {} > {}",
                self.stores_in_flight, self.cfg.store_buffer
            ));
        }
        // RS slots, free list and age matrix must agree.
        let occupied = self.rs.iter().filter(|s| s.is_some()).count();
        if occupied + self.rs_free.len() != self.cfg.rs_entries {
            return fail(format!(
                "RS slot leak: {} occupied + {} free != {} entries",
                occupied,
                self.rs_free.len(),
                self.cfg.rs_entries
            ));
        }
        if self.age.occupancy() != occupied {
            return fail(format!(
                "age matrix tracks {} slots but RS holds {occupied}",
                self.age.occupancy()
            ));
        }
        for (slot, occ) in self.rs.iter().enumerate() {
            if self.age.is_valid(slot) != occ.is_some() {
                return fail(format!(
                    "age matrix and RS disagree on slot {slot}: matrix {}, RS {}",
                    self.age.is_valid(slot),
                    occ.is_some()
                ));
            }
            if let Some(seq) = *occ {
                match self.entry(seq) {
                    None => return fail(format!("RS slot {slot} references retired seq {seq}")),
                    Some(e) if e.rs_slot != Some(slot) => {
                        return fail(format!(
                            "seq {seq} thinks it is in slot {:?} but RS slot {slot} holds it",
                            e.rs_slot
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        // Per-instruction stage ordering: fetch <= dispatch <= issue <=
        // complete (retire is checked implicitly: commit only pops
        // completed heads in order).
        for (i, e) in self.rob.iter().enumerate() {
            let seq = self.rob_base + i as u64;
            if e.fetched_at > e.visible_at {
                return fail(format!(
                    "seq {seq} (pc {}): fetched at {} after dispatch-visible at {}",
                    e.pc, e.fetched_at, e.visible_at
                ));
            }
            if let Some(iss) = e.issued_at {
                if iss < e.visible_at {
                    return fail(format!(
                        "seq {seq} (pc {}): issued at {iss} before dispatch-visible at {}",
                        e.pc, e.visible_at
                    ));
                }
                if let Some(c) = e.complete_at {
                    if c < iss {
                        return fail(format!(
                            "seq {seq} (pc {}): complete at {c} before issue at {iss}",
                            e.pc
                        ));
                    }
                }
            } else if e.complete_at.is_some() {
                return fail(format!("seq {seq} (pc {}): complete without issue", e.pc));
            }
        }
        Ok(())
    }

    /// Drain-time checks: once every instruction has retired, the window
    /// must be empty and the memory system must not have leaked MSHRs
    /// (in-flight fill tracking grows without bound only if cleanup broke).
    fn check_drained(&self) -> Result<(), SimError> {
        let fail = |message: String| {
            Err(SimError::InvariantViolation {
                cycle: self.now,
                message,
            })
        };
        if !self.rob.is_empty() {
            return fail(format!("{} ROB entries alive after drain", self.rob.len()));
        }
        if self.loads_in_flight != 0 || self.stores_in_flight != 0 {
            return fail(format!(
                "{} loads / {} stores in flight after drain",
                self.loads_in_flight, self.stores_in_flight
            ));
        }
        if self.age.occupancy() != 0 {
            return fail(format!(
                "{} scheduler slots alive after drain",
                self.age.occupancy()
            ));
        }
        // The hierarchy bounds its lazy in-flight table at 4096 entries;
        // more than that after drain means the cleanup path leaked.
        let mshrs = self.mem.inflight_fills();
        if mshrs > 4096 {
            return fail(format!("memory system leaked MSHRs: {mshrs} > 4096"));
        }
        Ok(())
    }

    // ---- commit ----------------------------------------------------------

    fn commit(&mut self) -> usize {
        self.prof.enter(HostPhase::Retire);
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            match head.complete_at {
                Some(c) if c <= self.now => {}
                _ => break,
            }
            let head = self.rob.pop_front().expect("head exists");
            self.res.tracer.record(
                self.now,
                self.rob_base,
                u64::from(head.pc),
                EventKind::Retire,
                None,
            );
            if self.cfg.record_pipeview {
                self.res.pipeview.push(PipeRecord {
                    seq: self.rob_base,
                    pc: head.pc,
                    fetch: head.fetched_at,
                    dispatch: head.visible_at,
                    issue: head.issued_at.unwrap_or(self.now),
                    complete: head.complete_at.unwrap_or(self.now),
                    retire: self.now,
                });
            }
            if head.is_store {
                // In-order store-buffer drain.
                if let Some(&(seq, _, _)) = self.store_queue.front() {
                    if seq == self.rob_base {
                        self.store_queue.pop_front();
                    }
                }
                self.stores_in_flight -= 1;
            }
            if head.is_load {
                self.loads_in_flight -= 1;
            }
            self.rob_base += 1;
            self.res.retired += 1;
            retired += 1;
        }
        retired
    }

    // ---- issue -----------------------------------------------------------

    fn entry(&self, seq: u64) -> Option<&Entry> {
        if seq < self.rob_base {
            return None; // retired => complete
        }
        self.rob.get((seq - self.rob_base) as usize)
    }

    fn dep_ready(&self, seq: u64) -> bool {
        match self.entry(seq) {
            None => true,
            Some(e) => e.complete_at.is_some_and(|c| c <= self.now),
        }
    }

    fn slot_ready(&self, seq: u64) -> bool {
        let e = self.entry(seq).expect("RS references live entry");
        if e.visible_at > self.now {
            return false;
        }
        for dep in e.deps.iter().flatten() {
            if !self.dep_ready(*dep) {
                return false;
            }
        }
        if let Some(st) = e.mem_dep {
            if !self.dep_ready(st) {
                return false;
            }
        }
        true
    }

    fn issue(&mut self) {
        self.prof.enter(HostPhase::Wakeup);
        // Fault-injection hook: freeze the scheduler so watchdog tests can
        // manufacture a deadlock on demand.
        if let Some(after) = self.cfg.freeze_scheduler_after {
            if self.res.retired >= after {
                return;
            }
        }
        // Unified "N-oldest-ready-first" selection (Table 1 baseline): the
        // scheduler picks up to `issue_width` ready instructions by age
        // (CRISP: ready-and-critical by age first — the PRIO pick of
        // Figure 6), *then* binds them to functional-unit ports. A pick
        // whose port class is exhausted this cycle wastes its issue slot,
        // exactly like a real matrix scheduler's select-then-dispatch.
        let cap = self.cfg.rs_entries;
        let mut ready = BitSet::new(cap);
        let mut prio = BitSet::new(cap);
        for (slot, occ) in self.rs.iter().enumerate() {
            let Some(seq) = *occ else { continue };
            if !self.slot_ready(seq) {
                continue;
            }
            ready.set(slot);
            if self.entry(seq).expect("live").critical {
                prio.set(slot);
            }
        }
        // The wakeup scan walks every RS slot, occupied or not.
        self.prof.rs_scanned(cap as u64);

        let free_alu_ports: Vec<usize> = (0..self.cfg.alu_ports)
            .filter(|&p| self.alu_busy[p] <= self.now)
            .collect();
        let mut alu_ports_used = 0;
        let mut loads_left = self.cfg.load_ports;
        let mut stores_left = self.cfg.store_ports;

        for _ in 0..self.cfg.issue_width {
            self.prof.enter(HostPhase::Select);
            if self.prof.is_on() {
                // Upper bound on candidates the age-matrix pick examines
                // (the popcount itself is skipped on the disabled path).
                self.prof.age_compared(ready.count() as u64);
            }
            let pick = match self.cfg.scheduler {
                SchedulerKind::OldestReadyFirst => self.age.pick_oldest(&ready),
                SchedulerKind::Crisp => self.age.pick_crisp(&ready, &prio),
                SchedulerKind::RandomReady => {
                    // Rotating-start slot scan: ignores age entirely.
                    let start = self.rr_cursor % cap;
                    (0..cap).map(|k| (start + k) % cap).find(|&s| ready.get(s))
                }
            };
            let Some(slot) = pick else { break };
            ready.clear(slot);
            prio.clear(slot);
            self.rr_cursor = self.rr_cursor.wrapping_add(7);

            let seq = self.rs[slot].expect("occupied slot");
            let fu = self.entry(seq).expect("live").fu;
            // Port binding: an unavailable port wastes this issue slot.
            let alu_port = match fu {
                FuClass::Alu => {
                    if alu_ports_used >= free_alu_ports.len() {
                        continue;
                    }
                    alu_ports_used += 1;
                    Some(free_alu_ports[alu_ports_used - 1])
                }
                FuClass::Load => {
                    if loads_left == 0 {
                        continue;
                    }
                    loads_left -= 1;
                    None
                }
                FuClass::Store => {
                    if stores_left == 0 {
                        continue;
                    }
                    stores_left -= 1;
                    None
                }
            };
            self.execute_slot(slot, alu_port);
        }
    }

    fn execute_slot(&mut self, slot: usize, alu_port: Option<usize>) {
        self.prof.enter(HostPhase::Execute);
        let seq = self.rs[slot].expect("occupied slot");
        let now = self.now;
        let idx = (seq - self.rob_base) as usize;

        // Compute completion time.
        let (complete_at, pc, is_load, addr, forwarded, mispredicted) = {
            let e = &self.rob[idx];
            if e.is_load {
                if e.mem_dep.is_some() {
                    (
                        now + self.cfg.forward_latency,
                        e.pc,
                        true,
                        e.addr,
                        true,
                        e.mispredicted,
                    )
                } else {
                    (0, e.pc, true, e.addr, false, e.mispredicted) // filled below
                }
            } else {
                (now + e.latency, e.pc, false, e.addr, false, e.mispredicted)
            }
        };

        let mut complete_at = complete_at;
        let mut fill = None;
        if is_load && forwarded {
            fill = Some(FillLevel::L1); // store-to-load forward counts as L1
        }
        if is_load && !forwarded {
            self.prof.enter(HostPhase::Dram);
            self.prof.mshr_probed(1);
            let res = self.mem.load(addr, u64::from(pc), now);
            self.prof.enter(HostPhase::Execute);
            complete_at = now + res.latency.max(1);
            fill = Some(match res.level {
                HitLevel::L1 => FillLevel::L1,
                HitLevel::Llc => FillLevel::Llc,
                HitLevel::Dram => FillLevel::Dram,
            });
            if self.cfg.collect_pc_stats {
                let s = self.res.load_pc_stats.entry(pc).or_default();
                s.execs += 1;
                s.total_latency += res.latency;
                match res.level {
                    HitLevel::L1 => s.l1_hits += 1,
                    HitLevel::Llc => s.llc_hits += 1,
                    HitLevel::Dram => {
                        s.llc_misses += 1;
                        self.outstanding_dram.retain(|&c| c > now);
                        s.mlp_sum += self.outstanding_dram.len() as u64 + 1;
                        self.outstanding_dram.push(complete_at);
                    }
                }
            } else if res.level == HitLevel::Dram {
                self.outstanding_dram.retain(|&c| c > now);
                self.outstanding_dram.push(complete_at);
            }
        } else if is_load && forwarded && self.cfg.collect_pc_stats {
            let s = self.res.load_pc_stats.entry(pc).or_default();
            s.execs += 1;
            s.l1_hits += 1;
            s.total_latency += self.cfg.forward_latency;
        }

        {
            let e = &mut self.rob[idx];
            if e.is_store {
                complete_at = now + 1;
            }
            e.issued_at = Some(now);
            e.complete_at = Some(complete_at);
            e.rs_slot = None;
            e.fill = fill;
        }
        let (is_store, unpipelined, latency, critical) = {
            let e = &self.rob[idx];
            (e.is_store, e.unpipelined, e.latency, e.critical)
        };
        if critical {
            self.res.issued_critical += 1;
        } else {
            self.res.issued_noncritical += 1;
        }
        self.res
            .tracer
            .record(now, seq, u64::from(pc), EventKind::Issue, None);
        self.res
            .tracer
            .record(complete_at, seq, u64::from(pc), EventKind::Complete, fill);
        if is_store {
            // Stores access the hierarchy at execute (allocation + prefetch
            // training); latency is absorbed by the store buffer.
            self.prof.enter(HostPhase::Dram);
            self.prof.mshr_probed(1);
            let _ = self.mem.store(addr, u64::from(pc), now);
            self.prof.enter(HostPhase::Execute);
        }
        if let Some(p) = alu_port {
            self.alu_busy[p] = if unpipelined { now + latency } else { now + 1 };
        }

        // Misprediction resolution: un-block fetch.
        if mispredicted && self.fetch_blocked_by == Some(seq) {
            self.fetch_blocked_by = None;
            self.fetch_blocked_until = complete_at + self.cfg.redirect_penalty;
            self.res
                .tracer
                .record(complete_at, seq, u64::from(pc), EventKind::Redirect, None);
        }

        // Free the RS slot.
        self.rs[slot] = None;
        self.rs_free.push(slot);
        self.age.remove(slot);
    }

    // ---- dispatch --------------------------------------------------------

    fn dispatch(&mut self) {
        self.prof.enter(HostPhase::Dispatch);
        for _ in 0..self.cfg.fetch_width {
            let Some(&f) = self.fetch_buffer.front() else {
                break;
            };
            if f.visible_at > self.now
                || self.rob.len() >= self.cfg.rob_entries
                || self.rs_free.is_empty()
            {
                break;
            }
            let rec = self.trace[f.trace_idx];
            let inst = self.program.inst(rec.pc);
            if inst.is_load() && self.loads_in_flight >= self.cfg.load_buffer {
                break;
            }
            if inst.is_store() && self.stores_in_flight >= self.cfg.store_buffer {
                break;
            }
            self.fetch_buffer.pop_front();

            let seq = self.next_seq;
            self.next_seq += 1;
            debug_assert_eq!(seq, self.rob_base + self.rob.len() as u64);

            // Rename: map source registers to in-flight producers.
            self.prof.enter(HostPhase::Rename);
            let mut deps = [None; 3];
            for (i, src) in inst.srcs.iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        deps[i] = self.reg_producer[r.index()].filter(|&p| p >= self.rob_base);
                    }
                }
            }
            // Memory disambiguation: youngest older overlapping store.
            self.prof.enter(HostPhase::Lsq);
            let mut mem_dep = None;
            if inst.is_load() {
                let lo = rec.addr;
                let hi = rec.addr + inst.width.bytes();
                let mut probes = 0u64;
                for &(sseq, saddr, swidth) in self.store_queue.iter().rev() {
                    probes += 1;
                    if saddr < hi && lo < saddr + swidth {
                        mem_dep = Some(sseq);
                        break;
                    }
                }
                self.prof.lsq_probed(probes);
                self.loads_in_flight += 1;
            }
            if inst.is_store() {
                self.store_queue
                    .push_back((seq, rec.addr, inst.width.bytes()));
                self.stores_in_flight += 1;
            }
            self.prof.enter(HostPhase::Dispatch);
            if let Some(d) = inst.dep_dst() {
                self.reg_producer[d.index()] = Some(seq);
            }

            let critical = self.critical.is_some_and(|c| c[rec.pc as usize]);
            let entry = Entry {
                pc: rec.pc,
                fu: inst.fu_class(),
                latency: u64::from(inst.op.latency()),
                unpipelined: inst.op.unpipelined(),
                critical,
                is_load: inst.is_load(),
                is_store: inst.is_store(),
                mispredicted: f.mispredicted,
                deps,
                mem_dep,
                addr: rec.addr,
                fetched_at: f.fetched_at,
                visible_at: self.now,
                issued_at: None,
                complete_at: None,
                rs_slot: None,
                fill: None,
            };
            // Allocate an RS slot (RAND policy: any free slot).
            let slot = self.rs_free.pop().expect("checked non-empty");
            self.rs[slot] = Some(seq);
            self.age.insert(slot);
            let mut entry = entry;
            entry.rs_slot = Some(slot);
            self.rob.push_back(entry);
            self.res
                .tracer
                .record(self.now, seq, u64::from(rec.pc), EventKind::Dispatch, None);
        }
    }

    // ---- fetch -----------------------------------------------------------

    fn fetch(&mut self) {
        self.prof.enter(HostPhase::Fetch);
        // Mispredict recovery.
        if self.fetch_blocked_by.is_some() {
            self.res.fetch_stall_mispredict_cycles += 1;
            return;
        }
        if self.now < self.fetch_blocked_until {
            self.res.fetch_stall_mispredict_cycles += 1;
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width
            && self.fetch_idx < self.trace.len()
            && self.fetch_buffer.len() < self.cfg.fetch_queue_entries
        {
            let rec = self.trace[self.fetch_idx];
            let inst = self.program.inst(rec.pc);
            let pc_addr = self.layout.addr(rec.pc);

            // Instruction-cache gating, per line.
            let line = pc_addr / crisp_mem::LINE_BYTES;
            if let Some((wline, ready)) = self.icache_wait {
                if self.now < ready {
                    self.res.fetch_stall_icache_cycles += 1;
                    return;
                }
                self.current_line = Some(wline);
                self.icache_wait = None;
            }
            if self.current_line != Some(line) {
                self.prof.enter(HostPhase::Mshr);
                self.prof.mshr_probed(1);
                let res = self.mem.fetch(pc_addr, self.now);
                self.prof.enter(HostPhase::Fetch);
                if res.latency > self.cfg.memory.l1i_latency {
                    self.icache_wait = Some((line, self.now + res.latency));
                    self.res.fetch_stall_icache_cycles += 1;
                    return;
                }
                self.current_line = Some(line);
            }

            // Branch prediction.
            let mut mispredicted = false;
            let mut btb_bubble = false;
            if inst.op.is_ctrl() && !self.cfg.perfect_branch_prediction {
                let actual_next = self.layout.addr(rec.next_pc);
                let fallthrough = self.layout.addr(rec.pc + 1);
                let target_addr = match inst.target {
                    Some(t) => self.layout.addr(t),
                    None => actual_next,
                };
                let taken = rec.taken || !inst.op.is_cond_branch();
                let out = self
                    .bpu
                    .observe(inst, pc_addr, taken, target_addr, fallthrough);
                // For indirect/ret the "target" trained above is static;
                // fix up: those kinds pass the actual next address.
                mispredicted = out.mispredicted;
                btb_bubble = out.btb_miss_taken;
                if self.cfg.collect_pc_stats && inst.op.is_cond_branch() {
                    let s = self.res.branch_pc_stats.entry(rec.pc).or_default();
                    s.execs += 1;
                    if mispredicted {
                        s.mispredicts += 1;
                    }
                }
            } else if inst.op.is_ctrl() && self.cfg.collect_pc_stats && inst.op.is_cond_branch() {
                self.res.branch_pc_stats.entry(rec.pc).or_default().execs += 1;
            }

            self.fetch_buffer.push_back(Fetched {
                trace_idx: self.fetch_idx,
                fetched_at: self.now,
                visible_at: self.now + self.cfg.frontend_depth,
                mispredicted,
            });
            // Dispatch consumes the trace in order, so the sequence number
            // this instruction will get equals its trace index.
            self.res.tracer.record(
                self.now,
                self.fetch_idx as u64,
                u64::from(rec.pc),
                EventKind::Fetch,
                None,
            );
            if mispredicted {
                // Fetch must wait for resolution; remember by sequence
                // number the instruction will get at dispatch.
                let future_seq =
                    self.rob_base + self.rob.len() as u64 + self.fetch_buffer.len() as u64 - 1;
                self.fetch_blocked_by = Some(future_seq);
            }
            self.fetch_idx += 1;
            fetched += 1;

            if mispredicted {
                break;
            }
            if btb_bubble {
                self.fetch_blocked_until = self.now + self.cfg.btb_miss_penalty;
                break;
            }
            // At most one taken control transfer per fetch cycle.
            if inst.op.is_ctrl() && rec.next_pc != rec.pc + 1 {
                self.current_line = None; // redirected: new line next cycle
                break;
            }
        }
    }

    /// FDIP: prefetch instruction lines along the (predicted ≈ traced)
    /// path, up to `ftq_entries` instructions ahead of fetch.
    fn fdip(&mut self) {
        self.prof.enter(HostPhase::Fetch);
        if self.fetch_blocked_by.is_some() {
            return;
        }
        let limit = (self.fetch_idx + self.cfg.ftq_entries).min(self.trace.len());
        if self.ftq_cursor < self.fetch_idx {
            self.ftq_cursor = self.fetch_idx;
        }
        let mut issued = 0;
        while self.ftq_cursor < limit && issued < 2 {
            let rec = self.trace[self.ftq_cursor];
            let addr = self.layout.addr(rec.pc);
            let line = addr / crisp_mem::LINE_BYTES;
            if self.last_prefetched_line != Some(line) {
                self.prof.enter(HostPhase::Mshr);
                self.prof.mshr_probed(1);
                self.mem.prefetch_inst(addr, self.now);
                self.prof.enter(HostPhase::Fetch);
                self.last_prefetched_line = Some(line);
                issued += 1;
            }
            self.ftq_cursor += 1;
        }
    }
}

/// Resolution of the mispredict-block sequence number requires dispatch to
/// assign sequence numbers in fetch order; this is asserted in dispatch.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::config::SchedulerKind;
    use crisp_emu::{Emulator, Memory};
    use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A simple ALU loop: IPC should approach the ALU-port limit.
    fn alu_loop() -> (crisp_isa::Program, Trace) {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 2000);
        let top = b.label();
        b.bind(top);
        // 6 independent ALU ops + loop overhead.
        b.alu_ri(AluOp::Add, r(2), r(2), 1);
        b.alu_ri(AluOp::Add, r(3), r(3), 1);
        b.alu_ri(AluOp::Add, r(4), r(4), 1);
        b.alu_ri(AluOp::Add, r(5), r(5), 1);
        b.alu_ri(AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        (p, t)
    }

    #[test]
    fn alu_loop_reaches_high_ipc() {
        let (p, t) = alu_loop();
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(res.retired, t.len() as u64);
        // 4 ALU ports; the loop is 6 instructions with a 1-cycle dep chain
        // on r1 every iteration. Expect IPC between 3 and 4.5.
        assert!(res.ipc() > 2.5, "ipc = {}", res.ipc());
        assert!(res.ipc() <= 6.0);
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 3000);
        b.li(r(2), 0);
        let top = b.label();
        b.bind(top);
        b.alu_ri(AluOp::Add, r(2), r(2), 1); // serial chain through r2
        b.alu_ri(AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        // The r2 chain is 1 op/cycle but r1's chain runs in parallel:
        // 3 instructions per iteration, iteration latency 1 cycle => ~3.
        assert!(res.ipc() > 1.5 && res.ipc() < 4.0, "ipc = {}", res.ipc());
    }

    #[test]
    fn cache_missing_loads_crater_ipc() {
        // Pointer chase over a large shuffled ring: every load misses.
        let n = 4096u64;
        let base = 0x100_0000u64;
        let mut mem = Memory::new();
        // Ring with stride large enough to defeat prefetchers: node i ->
        // (i*65) % n, step 4 KiB * small prime.
        for i in 0..n {
            let next = (i * 65 + 1) % n;
            mem.write_u64(base + i * 4096, base + next * 4096);
        }
        let mut b = ProgramBuilder::new();
        b.li(r(1), base as i64);
        b.li(r(2), 3000);
        let top = b.label();
        b.bind(top);
        b.load(r(1), r(1), 0, 8);
        b.alu_ri(AluOp::Sub, r(2), r(2), 1);
        b.branch(Cond::Ne, r(2), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(100_000);
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert!(res.ipc() < 0.2, "pointer chase ipc = {}", res.ipc());
        assert!(res.rob_head_stall_cycles > res.cycles / 2);
        assert!(res.llc_load_mpki() > 100.0);
    }

    /// The pointer-chase workload of `cache_missing_loads_crater_ipc`,
    /// shared with the observability tests below.
    fn pointer_chase() -> (crisp_isa::Program, Trace, Pc) {
        let n = 4096u64;
        let base = 0x100_0000u64;
        let mut mem = Memory::new();
        for i in 0..n {
            let next = (i * 65 + 1) % n;
            mem.write_u64(base + i * 4096, base + next * 4096);
        }
        let mut b = ProgramBuilder::new();
        b.li(r(1), base as i64);
        b.li(r(2), 3000);
        let top = b.label();
        b.bind(top);
        let chase = b.load(r(1), r(1), 0, 8);
        b.alu_ri(AluOp::Sub, r(2), r(2), 1);
        b.branch(Cond::Ne, r(2), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(100_000);
        (p, t, chase)
    }

    #[test]
    fn hostprof_attributes_host_time_to_named_phases() {
        let (p, t, _) = pointer_chase();
        let mut cfg = SimConfig::skylake();
        cfg.hostprof = true;
        let res = Simulator::new(cfg).run(&p, &t, None);
        let prof = &res.hostprof;
        assert!(prof.enabled);
        assert_eq!(prof.cycles, res.cycles);
        assert_eq!(prof.retired, res.retired);
        // The acceptance bar: ≥95% of measured host time lands in named
        // phases; only poll points and loop control may fall to `other`.
        let named = prof.named_ns() as f64 / prof.total_ns().max(1) as f64;
        assert!(named >= 0.95, "named share {named:.3}\n{}", prof.render());
        // The wakeup scan walks the full 96-entry RS every cycle.
        assert_eq!(prof.rs_slots_scanned, res.cycles * 96);
        // A load-bound workload exercises the memory-side phases.
        assert!(prof.mshr_probes > 0);
        assert!(prof.phase_ns[crisp_obs::Phase::Dram as usize] > 0);
        assert!(prof.phase_ns[crisp_obs::Phase::Retire as usize] > 0);
        let rendered = prof.render();
        assert!(rendered.contains("wakeup"), "{rendered}");

        // Default config: the profiler stays off and reports zeros.
        let off = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(off.hostprof, crisp_obs::HostProfReport::default());
    }

    #[test]
    fn flight_recorder_captures_full_lifecycle() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.tracer_capacity = Some(1 << 18);
        let res = Simulator::new(cfg).run(&p, &t, None);
        // Every lifecycle transition of the last instruction is in the
        // ring, in recording order.
        let last = t.len() as u64 - 1;
        let kinds: Vec<EventKind> = res
            .tracer
            .events()
            .iter()
            .filter(|e| e.seq == last)
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            [
                EventKind::Fetch,
                EventKind::Dispatch,
                EventKind::Issue,
                EventKind::Complete,
                EventKind::Retire,
            ]
        );
        // Tracing is off by default and records nothing.
        let off = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert!(!off.tracer.is_on());
        assert!(off.tracer.events().is_empty());
    }

    #[test]
    fn load_completions_carry_the_serving_fill_level() {
        let (p, t, chase) = pointer_chase();
        let mut cfg = SimConfig::skylake();
        cfg.tracer_capacity = Some(1 << 16);
        let res = Simulator::new(cfg).run(&p, &t, None);
        let dram_fills = res
            .tracer
            .events()
            .iter()
            .filter(|e| {
                e.kind == EventKind::Complete
                    && e.pc == u64::from(chase)
                    && e.fill == Some(FillLevel::Dram)
            })
            .count();
        assert!(dram_fills > 100, "only {dram_fills} DRAM-fill completions");
    }

    #[test]
    fn stall_attribution_conserves_backend_cycles() {
        let (p, t, chase) = pointer_chase();
        let mut cfg = SimConfig::skylake();
        cfg.stall_attribution = true;
        let res = Simulator::new(cfg).run(&p, &t, None);
        // Conservation: every ROB-head stall cycle is charged to exactly
        // one (pc, class) cell.
        assert_eq!(
            res.stall_table.backend_cycles(),
            res.rob_head_stall_cycles,
            "stall attribution lost or double-counted cycles"
        );
        // The chasing load dominates, and its stalls are DRAM stalls.
        let top = res.stall_table.top_k(1);
        assert_eq!(top[0].pc, u64::from(chase));
        assert!(
            top[0].cycles[StallClass::LoadDram.index()] > top[0].backend / 2,
            "expected DRAM-dominated stalls: {:?}",
            top[0]
        );
        // Off by default: nothing charged.
        let off = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(off.stall_table.backend_cycles(), 0);
        assert_eq!(off.stall_table.frontend_cycles(), 0);
    }

    #[test]
    fn telemetry_samples_ride_the_poll_path() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.cancel_check_interval = 256;
        cfg.telemetry_interval = Some(512);
        let res = Simulator::new(cfg).run(&p, &t, None);
        let samples = res.telemetry.samples();
        assert!(samples.len() >= 2, "only {} samples", samples.len());
        for pair in samples.windows(2) {
            assert!(pair[1].cycle > pair[0].cycle);
        }
        for s in samples {
            // Sampling is quantised to the poll cadence and never more
            // frequent than the configured interval.
            assert!(s.interval_cycles >= 512);
            assert_eq!(s.interval_cycles % 256, 0);
            assert!(s.ipc() > 0.0);
            assert!(s.rob <= 224);
        }
        let sampled_retired: u64 = samples.iter().map(|s| s.retired).sum();
        assert!(sampled_retired <= res.retired);
        // Off by default.
        let off = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert!(off.telemetry.samples().is_empty());
    }

    #[test]
    fn progress_beacon_is_published_on_the_poll_path() {
        let (p, t) = alu_loop();
        let beacon = crate::cancel::ProgressBeacon::new();
        let mut cfg = SimConfig::skylake();
        cfg.cancel_check_interval = 128;
        cfg.progress = Some(beacon.clone());
        let res = Simulator::new(cfg).run(&p, &t, None);
        let (cycle, retired) = beacon.read();
        assert!(cycle > 0 && cycle <= res.cycles);
        assert!(retired > 0 && retired <= res.retired);
    }

    #[test]
    fn deadlock_report_carries_flight_recorder_tail() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.freeze_scheduler_after = Some(50);
        cfg.watchdog_cycles = 20_000;
        cfg.tracer_capacity = Some(512);
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        let SimError::Deadlock(report) = err else {
            panic!("expected deadlock, got {err}");
        };
        assert!(!report.recent_events.is_empty());
        assert!(report.recent_events.len() <= 256);
        assert!(report.to_string().contains("flight recorder"));
    }

    #[test]
    fn store_load_forwarding_respects_order() {
        // A serial dependence chain *through memory*: each iteration loads
        // the value the previous iteration stored to the same address, adds
        // to it, and stores it back. Iteration latency is bounded below by
        // the forwarding latency, so IPC must stay low; without memory
        // ordering the iterations would overlap freely at ~4+ IPC.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x8000);
        b.li(r(3), 1000);
        let top = b.label();
        b.bind(top);
        b.load(r(4), r(1), 0, 8);
        b.alu_ri(AluOp::Add, r(4), r(4), 5);
        b.store(r(1), 0, r(4), 8);
        b.alu_ri(AluOp::Sub, r(3), r(3), 1);
        b.branch(Cond::Ne, r(3), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(res.retired, t.len() as u64);
        // 5 insts / iteration; iteration >= forward(5) + add(1) + store(1)
        // cycles => IPC well under 1.5.
        assert!(
            res.ipc() < 1.5,
            "memory ordering violated? ipc = {}",
            res.ipc()
        );
        assert!(res.ipc() > 0.3, "unreasonably slow: ipc = {}", res.ipc());
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // Data-dependent unpredictable branch: xorshift parity decides.
        let mut mem = Memory::new();
        let base = 0x4000u64;
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..2048 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write_u64(base + i * 8, x & 1);
        }
        let mut b = ProgramBuilder::new();
        b.li(r(1), base as i64);
        b.li(r(2), 2048);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.load(r(3), r(1), 0, 8);
        b.branch(Cond::Eq, r(3), Reg::ZERO, skip);
        b.alu_ri(AluOp::Add, r(4), r(4), 1);
        b.bind(skip);
        b.alu_ri(AluOp::Add, r(1), r(1), 8);
        b.alu_ri(AluOp::Sub, r(2), r(2), 1);
        b.branch(Cond::Ne, r(2), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(100_000);

        let noisy = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        let mut cfg = SimConfig::skylake();
        cfg.perfect_branch_prediction = true;
        let perfect = Simulator::new(cfg).run(&p, &t, None);
        assert!(noisy.branch_mpki() > 20.0, "mpki = {}", noisy.branch_mpki());
        assert!(
            perfect.ipc() > noisy.ipc() * 1.3,
            "perfect {} vs noisy {}",
            perfect.ipc(),
            noisy.ipc()
        );
        assert!(noisy.fetch_stall_mispredict_cycles > 0);
    }

    #[test]
    fn crisp_scheduler_prioritizes_critical_load_slice() {
        // The Figure 1/2 microbenchmark: a pointer chase whose delinquent
        // loads sit *behind* a dense dot-product body in program order.
        // Under oldest-ready-first the delinquent loads lose issue slots to
        // older ready ALU work; CRISP promotes them and hides part of the
        // miss latency.
        let n_nodes = 2048u64;
        let node_bytes = 4096u64;
        let base = 0x200_0000u64;
        let mut mem = Memory::new();
        for i in 0..n_nodes {
            let next = (i * 97 + 1) % n_nodes;
            mem.write_u64(base + i * node_bytes, base + next * node_bytes);
            mem.write_u64(base + i * node_bytes + 8, i + 1);
        }
        let a_base = 0x10_0000i64;
        let b_base = 0x11_0000i64;
        let mut b = ProgramBuilder::new();
        let (cur, val, t1, t2, iters) = (r(1), r(2), r(4), r(5), r(6));
        let accs = [r(10), r(11), r(12), r(13)];
        b.li(cur, base as i64);
        b.li(iters, 400);
        let outer = b.label();
        b.bind(outer);
        let val_load = b.load(val, cur, 8, 8); // val = cur->val
        for e in 0..30 {
            b.load(t1, Reg::ZERO, a_base + 8 * e, 8);
            b.load(t2, Reg::ZERO, b_base + 8 * e, 8);
            b.mul(t1, t1, val);
            b.alu_rr(AluOp::Xor, t2, t2, t1);
            let acc = accs[(e % 4) as usize];
            b.alu_rr(AluOp::Add, acc, acc, t2);
        }
        let chase = b.load(cur, cur, 0, 8); // cur = cur->next (loop bottom)
        b.alu_ri(AluOp::Sub, iters, iters, 1);
        b.branch(Cond::Ne, iters, Reg::ZERO, outer);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(400_000);

        let base_res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);

        let mut critical = vec![false; p.len()];
        critical[val_load as usize] = true;
        critical[chase as usize] = true;
        let crisp_cfg = SimConfig::skylake().with_scheduler(SchedulerKind::Crisp);
        let crisp_res = Simulator::new(crisp_cfg).run(&p, &t, Some(&critical));

        assert!(
            crisp_res.ipc() > base_res.ipc() * 1.03,
            "CRISP {} should beat OOO {} on pointer-chase + dot-product",
            crisp_res.ipc(),
            base_res.ipc()
        );
        // CRISP reduces ROB-head stalls, the paper's confirmation metric.
        assert!(crisp_res.rob_head_stall_cycles < base_res.rob_head_stall_cycles);
    }

    #[test]
    fn upc_timeline_is_recorded_when_enabled() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.record_upc_timeline = true;
        let res = Simulator::new(cfg).run(&p, &t, None);
        assert_eq!(res.upc.as_slice().len() as u64, res.cycles);
        let avg = res.upc.average(0, res.cycles as usize);
        assert!((avg - res.ipc()).abs() < 0.01);
    }

    #[test]
    fn pc_stats_capture_load_behaviour() {
        let (p, t) = alu_loop();
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        // No loads in the ALU loop.
        assert!(res.load_pc_stats.is_empty());
        // The loop branch (pc 6: li + 5 ALU ops precede it) was tracked.
        let branch_pc = 6;
        let bs = res.branch_pc_stats.get(&branch_pc).expect("branch stats");
        assert_eq!(bs.execs, 2000);
        assert!(bs.mispredict_ratio() < 0.05);
    }

    #[test]
    fn random_scheduler_never_beats_oldest_first_badly() {
        let (p, t) = alu_loop();
        let oldest = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        let rand_cfg = SimConfig::skylake().with_scheduler(SchedulerKind::RandomReady);
        let rnd = Simulator::new(rand_cfg).run(&p, &t, None);
        assert_eq!(rnd.retired, oldest.retired);
        // RAND without age awareness should not exceed oldest-first by much
        // on a regular loop.
        assert!(rnd.ipc() <= oldest.ipc() * 1.1);
    }

    #[test]
    fn criticality_map_length_is_validated() {
        let (p, t) = alu_loop();
        let sim = Simulator::new(SimConfig::skylake());
        let bad = vec![false; p.len() + 1];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&p, &t, Some(&bad))));
        assert!(result.is_err());
    }

    #[test]
    fn unpipelined_divides_block_their_port() {
        // A stream of independent divides: 4 ALU ports, 20-cycle
        // unpipelined latency => at most one divide per port per 20
        // cycles (~0.2 IPC for a pure divide stream).
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1000);
        b.li(r(2), 7);
        let top = b.label();
        b.bind(top);
        for k in 0..4 {
            b.div(r((10 + k) as u8), r(2), r(2));
        }
        b.alu_ri(AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        // 6 insts per iteration, iteration >= 20 cycles (4 divs on 4
        // ports, unpipelined) => IPC <= ~0.35.
        assert!(res.ipc() < 0.5, "divides must serialise: ipc {}", res.ipc());
    }

    #[test]
    fn store_buffer_backpressure_limits_store_floods() {
        // A long run of back-to-back stores: 1 store port drains 1/cycle,
        // so IPC of a pure store stream approaches 1 despite 6-wide fetch.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x9000);
        b.li(r(2), 2000);
        let top = b.label();
        b.bind(top);
        for k in 0..8 {
            b.store(r(1), 8 * k, r(2), 8);
        }
        b.alu_ri(AluOp::Sub, r(2), r(2), 1);
        b.branch(Cond::Ne, r(2), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        // 10 insts per iteration with 8 stores => bounded by the single
        // store port: IPC <= 10/8 = 1.25.
        assert!(res.ipc() < 1.35, "store port must bound IPC: {}", res.ipc());
    }

    #[test]
    fn fdip_reduces_icache_stalls_on_large_footprints() {
        // A program whose straight-line footprint exceeds L1I (32 KiB):
        // thousands of distinct instructions in sequence.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 200);
        let top = b.label();
        b.bind(top);
        for k in 0..3000i64 {
            b.alu_ri(AluOp::Add, r(2), r(2), k & 0xFF);
        }
        b.alu_ri(AluOp::Sub, r(1), r(1), 1);
        b.branch(Cond::Ne, r(1), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        assert!(p.static_bytes() > 8 * 1024);
        let t = Emulator::new(&p, Memory::new()).run(60_000);
        let mut with_fdip = SimConfig::skylake();
        with_fdip.fdip = true;
        let mut without = SimConfig::skylake();
        without.fdip = false;
        let a = Simulator::new(with_fdip).run(&p, &t, None);
        let bres = Simulator::new(without).run(&p, &t, None);
        assert!(
            a.fetch_stall_icache_cycles <= bres.fetch_stall_icache_cycles,
            "FDIP must not increase icache stalls: {} vs {}",
            a.fetch_stall_icache_cycles,
            bres.fetch_stall_icache_cycles
        );
        assert!(a.cycles <= bres.cycles);
    }

    #[test]
    fn smaller_windows_never_run_faster() {
        let (p, t) = alu_loop();
        let small = Simulator::new(SimConfig::with_window(32, 64)).run(&p, &t, None);
        let big = Simulator::new(SimConfig::with_window(192, 448)).run(&p, &t, None);
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn critical_prefix_grows_fetch_footprint() {
        // Tagging everything adds a byte per instruction: the icache sees
        // more lines, never fewer.
        let (p, t) = alu_loop();
        let untagged = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        let all = vec![true; p.len()];
        let tagged = Simulator::new(SimConfig::skylake()).run(&p, &t, Some(&all));
        assert!(tagged.mem.l1i.accesses >= untagged.mem.l1i.accesses);
        assert_eq!(tagged.retired, untagged.retired);
    }

    #[test]
    fn pipeview_records_every_instruction_in_order() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.record_pipeview = true;
        let res = Simulator::new(cfg).run(&p, &t, None);
        let recs = res.pipeview.records();
        assert_eq!(recs.len(), t.len());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert!(r.fetch <= r.dispatch);
            assert!(r.dispatch <= r.issue);
            assert!(r.issue <= r.complete);
            assert!(r.complete <= r.retire);
        }
        // Retirement is monotone in sequence order.
        for w in recs.windows(2) {
            assert!(w[0].retire <= w[1].retire);
        }
        let txt = res.pipeview.render(10, 14);
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn empty_trace_completes_instantly() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        let t = Trace::new();
        let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(res.retired, 0);
        assert_eq!(res.cycles, 0);
    }

    #[test]
    fn try_run_reports_map_length_mismatch_without_panicking() {
        let (p, t) = alu_loop();
        let sim = Simulator::new(SimConfig::skylake());
        let bad = vec![false; p.len() + 1];
        let err = sim.try_run(&p, &t, Some(&bad)).unwrap_err();
        assert_eq!(
            err,
            SimError::CriticalityMapLength {
                expected: p.len(),
                actual: p.len() + 1,
            }
        );
    }

    #[test]
    fn run_tolerant_accepts_any_map_length() {
        let (p, t) = alu_loop();
        let sim = Simulator::new(SimConfig::skylake());
        let baseline = sim.run(&p, &t, None);
        // Too short, too long, empty: all must complete with full retire.
        for map in [vec![], vec![true; 2], vec![true; p.len() + 500]] {
            let res = sim.run_tolerant(&p, &t, &map).expect("degrades gracefully");
            assert_eq!(res.retired, baseline.retired);
        }
    }

    #[test]
    fn try_new_rejects_degenerate_config() {
        let mut cfg = SimConfig::skylake();
        cfg.rob_entries = 0;
        let err = Simulator::try_new(cfg).unwrap_err();
        assert!(matches!(err, SimError::Config(ref c) if c.field == "rob_entries"));
    }

    #[test]
    fn watchdog_catches_frozen_scheduler_with_diagnostics() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.freeze_scheduler_after = Some(100);
        cfg.watchdog_cycles = 10_000; // keep the test fast
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        let SimError::Deadlock(report) = err else {
            panic!("expected deadlock, got {err}");
        };
        assert!(report.retired >= 100);
        assert!(report.stalled_for >= 10_000);
        assert_eq!(report.rob.1, 224);
        let (_, state) = report.rob_head.expect("ROB head is stuck");
        assert_eq!(state, HeadState::WaitingToIssue);
        assert!(report.oldest_unissued.is_some());
        // The dump names the stall site.
        let dump = report.to_string();
        assert!(dump.contains("ROB head"), "dump: {dump}");
        assert!(dump.contains("oldest unissued"), "dump: {dump}");
    }

    #[test]
    fn cycle_budget_aborts_deterministically_with_progress_report() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.cycle_budget = Some(50);
        let err = Simulator::new(cfg.clone())
            .try_run(&p, &t, None)
            .unwrap_err();
        let SimError::CycleBudgetExhausted {
            budget,
            retired,
            total,
        } = err
        else {
            panic!("expected budget exhaustion, got {err}");
        };
        assert_eq!(budget, 50);
        assert!(retired < total);
        // Deterministic: the same budget aborts at the same point.
        let err2 = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        assert_eq!(
            err2,
            SimError::CycleBudgetExhausted {
                budget,
                retired,
                total
            }
        );
        // A budget generous enough for the whole trace never fires.
        let mut roomy = SimConfig::skylake();
        roomy.cycle_budget = Some(u64::MAX);
        let res = Simulator::new(roomy).try_run(&p, &t, None).expect("fits");
        assert_eq!(res.retired, t.len() as u64);
    }

    #[test]
    fn pre_cancelled_token_aborts_at_cycle_zero() {
        let (p, t) = alu_loop();
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = SimConfig::skylake();
        cfg.cancel = Some(token);
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        let SimError::Cancelled { cycle, retired, .. } = err else {
            panic!("expected cancellation, got {err}");
        };
        assert_eq!(cycle, 0);
        assert_eq!(retired, 0);
    }

    #[test]
    fn expired_deadline_aborts_as_deadline_exceeded() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.cancel = Some(CancelToken::with_deadline(std::time::Duration::ZERO));
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        assert!(
            matches!(err, SimError::DeadlineExceeded { .. }),
            "expected deadline abort, got {err}"
        );
    }

    #[test]
    fn unexpired_token_does_not_perturb_the_run() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.cancel = Some(CancelToken::with_deadline(std::time::Duration::from_secs(
            3600,
        )));
        let with_token = Simulator::new(cfg).try_run(&p, &t, None).expect("clean");
        let plain = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        assert_eq!(with_token.cycles, plain.cycles);
        assert_eq!(with_token.retired, plain.retired);
    }

    #[test]
    fn invariant_checker_passes_on_healthy_runs() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.check_invariants = true;
        let checked = Simulator::new(cfg).try_run(&p, &t, None).expect("clean");
        let plain = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
        // Checking must not change behaviour.
        assert_eq!(checked.cycles, plain.cycles);
        assert_eq!(checked.retired, plain.retired);
    }

    #[test]
    fn invariant_checker_covers_memory_and_branch_workloads() {
        // Exercise loads, stores, forwarding and mispredictions under the
        // checker, not just the ALU path.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x8000);
        b.li(r(3), 500);
        let top = b.label();
        b.bind(top);
        b.load(r(4), r(1), 0, 8);
        b.alu_ri(AluOp::Add, r(4), r(4), 5);
        b.store(r(1), 0, r(4), 8);
        b.alu_ri(AluOp::Sub, r(3), r(3), 1);
        b.branch(Cond::Ne, r(3), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        let mut cfg = SimConfig::skylake();
        cfg.check_invariants = true;
        let res = Simulator::new(cfg).try_run(&p, &t, None).expect("clean");
        assert_eq!(res.retired, t.len() as u64);
    }

    /// Store-forwarding loop: exercises the LSQ, caches and forwarding.
    fn memory_loop() -> (crisp_isa::Program, Trace) {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x8000);
        b.li(r(3), 500);
        let top = b.label();
        b.bind(top);
        b.load(r(4), r(1), 0, 8);
        b.alu_ri(AluOp::Add, r(4), r(4), 5);
        b.store(r(1), 0, r(4), 8);
        b.alu_ri(AluOp::Sub, r(3), r(3), 1);
        b.branch(Cond::Ne, r(3), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);
        (p, t)
    }

    /// Data-dependent branches over xorshift parity: heavy mispredicts,
    /// so the BPU state actually matters to the resumed run.
    fn branchy_loop() -> (crisp_isa::Program, Trace) {
        let mut mem = Memory::new();
        let base = 0x4000u64;
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..1024 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write_u64(base + i * 8, x & 1);
        }
        let mut b = ProgramBuilder::new();
        b.li(r(1), base as i64);
        b.li(r(2), 1024);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.load(r(3), r(1), 0, 8);
        b.branch(Cond::Eq, r(3), Reg::ZERO, skip);
        b.alu_ri(AluOp::Add, r(4), r(4), 1);
        b.bind(skip);
        b.alu_ri(AluOp::Add, r(1), r(1), 8);
        b.alu_ri(AluOp::Sub, r(2), r(2), 1);
        b.branch(Cond::Ne, r(2), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, mem).run(100_000);
        (p, t)
    }

    /// Runs to completion while capturing every emitted checkpoint.
    fn run_capturing(
        cfg: SimConfig,
        p: &crisp_isa::Program,
        t: &Trace,
    ) -> (SimResult, Vec<SimSnapshot>) {
        let captured: Arc<Mutex<Vec<SimSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&captured);
        let mut cfg = cfg;
        cfg.checkpoint_sink = Some(CheckpointSink::new(move |s| {
            store.lock().expect("sink lock").push(s.clone());
        }));
        let res = Simulator::new(cfg).run(p, t, None);
        let snaps = std::mem::take(&mut *captured.lock().expect("sink lock"));
        (res, snaps)
    }

    /// A config that polls often enough for short tests to checkpoint.
    fn checkpointing_config(interval: u64) -> SimConfig {
        let mut cfg = SimConfig::skylake();
        cfg.cancel_check_interval = 64;
        cfg.checkpoint_interval = Some(interval);
        cfg
    }

    #[test]
    fn restored_run_finishes_with_identical_stats() {
        let (p, t) = memory_loop();
        let mut cfg = checkpointing_config(500);
        cfg.record_upc_timeline = true;
        cfg.record_pipeview = true;
        let (baseline, snapshots) = run_capturing(cfg.clone(), &p, &t);
        assert!(
            snapshots.len() >= 2,
            "expected several checkpoints, got {}",
            snapshots.len()
        );
        // Resume from the middle checkpoint and finish: every statistic —
        // counters, per-PC maps, the UPC timeline and the full pipeview —
        // must land byte-identical to the straight-through run.
        let snapshot = snapshots[snapshots.len() / 2].clone();
        assert!(snapshot.cycle > 0 && snapshot.cycle < baseline.cycles);
        let mut resume_cfg = cfg;
        resume_cfg.checkpoint_interval = None;
        resume_cfg.restore = Some(Arc::new(snapshot));
        let resumed = Simulator::new(resume_cfg).run(&p, &t, None);
        assert_eq!(resumed.snapshot_words(), baseline.snapshot_words());
        assert_eq!(resumed.cycles, baseline.cycles);
        assert_eq!(resumed.retired, t.len() as u64);
    }

    #[test]
    fn audit_restore_proves_determinism_across_workloads() {
        for (name, (p, t)) in [
            ("alu", alu_loop()),
            ("memory", memory_loop()),
            ("branchy", branchy_loop()),
        ] {
            let mut cfg = SimConfig::skylake();
            cfg.cancel_check_interval = 250;
            let audit = Simulator::new(cfg)
                .audit_restore(&p, &t, None, 1000)
                .unwrap_or_else(|e| panic!("{name}: audit failed: {e}"));
            assert!(
                audit.checkpoints_verified >= 1,
                "{name}: no checkpoints were captured"
            );
            assert_eq!(audit.result.retired, t.len() as u64, "{name}");
        }
    }

    #[test]
    fn audit_restore_verifies_the_crisp_scheduler_path() {
        // The age-matrix PRIO path and criticality map must survive
        // restore too, not just the baseline scheduler.
        let (p, t) = memory_loop();
        let critical = vec![true; p.len()];
        let mut cfg = SimConfig::skylake().with_scheduler(SchedulerKind::Crisp);
        cfg.cancel_check_interval = 250;
        let audit = Simulator::new(cfg)
            .audit_restore(&p, &t, Some(&critical), 1000)
            .expect("crisp audit");
        assert!(audit.checkpoints_verified >= 1);
    }

    #[test]
    fn restore_rejects_snapshot_from_a_different_trace() {
        let (p, t) = alu_loop();
        let (_, snapshots) = run_capturing(checkpointing_config(500), &p, &t);
        let snapshot = snapshots.first().expect("checkpoint").clone();
        let (p2, t2) = memory_loop();
        let mut cfg = SimConfig::skylake();
        cfg.restore = Some(Arc::new(snapshot));
        let err = Simulator::new(cfg).try_run(&p2, &t2, None).unwrap_err();
        let SimError::SnapshotRestore { section, message } = err else {
            panic!("expected restore rejection, got {err}");
        };
        assert_eq!(section, "engine");
        assert!(message.contains("different workload"), "message: {message}");
    }

    #[test]
    fn restore_rejects_tampered_and_truncated_snapshots() {
        let (p, t) = memory_loop();
        let (_, snapshots) = run_capturing(checkpointing_config(500), &p, &t);
        let good = snapshots.first().expect("checkpoint").clone();

        // Truncating a section must be detected, not mis-decoded.
        let mut truncated = good.clone();
        truncated.sections[0].1.pop();
        let mut cfg = SimConfig::skylake();
        cfg.restore = Some(Arc::new(truncated));
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotRestore { ref section, .. } if section == "engine"),
            "got {err}"
        );

        // A missing section is named in the error.
        let mut missing = good.clone();
        missing.sections.retain(|(name, _)| name != "bpu");
        let mut cfg = SimConfig::skylake();
        cfg.restore = Some(Arc::new(missing));
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotRestore { ref section, .. } if section == "bpu"),
            "got {err}"
        );

        // Corrupting the header cycle trips the final consistency check.
        let mut skewed = good;
        skewed.cycle += 1;
        let mut cfg = SimConfig::skylake();
        cfg.restore = Some(Arc::new(skewed));
        let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotRestore { ref section, .. } if section == "engine"),
            "got {err}"
        );
    }

    #[test]
    fn checkpoints_ride_the_cancel_poll_cadence() {
        let (p, t) = alu_loop();
        // Poll every 64 cycles, checkpoint every 100: emission quantises
        // up to the next poll, so consecutive checkpoints are >= 100
        // cycles apart and always on a poll boundary.
        let (res, snapshots) = run_capturing(checkpointing_config(100), &p, &t);
        assert!(snapshots.len() >= 2);
        for s in &snapshots {
            assert!(
                s.cycle > 0 && s.cycle.is_multiple_of(64),
                "cycle {}",
                s.cycle
            );
            assert!(s.cycle <= res.cycles);
        }
        for w in snapshots.windows(2) {
            assert!(w[1].cycle - w[0].cycle >= 100);
        }
    }

    #[test]
    fn unconfigured_runs_never_emit_checkpoints() {
        let (p, t) = alu_loop();
        let mut cfg = SimConfig::skylake();
        cfg.cancel_check_interval = 64;
        // Sink present but no interval: the hook must stay dormant.
        let (_, snapshots) = run_capturing(cfg, &p, &t);
        assert!(snapshots.is_empty());
    }
}
