//! The age-matrix instruction picker of paper Section 4.2 / Figure 6.
//!
//! Every issue-queue slot keeps an *age vector*: the set of slots currently
//! holding **older** instructions. Readiness is broadcast as a BID vector;
//! the slot whose `age ∧ BID` reduces to zero is the oldest ready
//! instruction. CRISP adds a PRIO vector (ready ∧ critical): when it is
//! non-empty the pick happens within it, otherwise the baseline pick
//! applies — exactly the multiplexer the paper adds in blue in Figure 6.

/// A fixed-capacity bitset over issue-queue slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset over `capacity` slots.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The number of addressable slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `self ∧ other` is all-zero (the NOR-reduction test of
    /// Figure 6).
    #[inline]
    pub fn disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Serialises the capacity echo and bit words as a word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.capacity as u64];
        w.extend_from_slice(&self.words);
        w
    }

    /// Restores state captured by [`BitSet::snapshot_words`] into a bitset
    /// of the same capacity.
    ///
    /// # Errors
    ///
    /// Rejects capacity mismatches, stray bits beyond the capacity, and
    /// malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "bitset");
        let cap = r.usize()?;
        if cap != self.capacity {
            return Err(format!(
                "bitset snapshot: capacity {cap}, expected {}",
                self.capacity
            ));
        }
        for w in &mut self.words {
            *w = r.u64()?;
        }
        let tail = self.capacity % 64;
        if tail != 0 && self.words.last().copied().unwrap_or(0) >> tail != 0 {
            return Err("bitset snapshot: bits set beyond capacity".to_string());
        }
        r.finish()
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// The age matrix: per-slot age vectors with the CRISP-extended pick logic.
///
/// # Example
///
/// ```
/// use crisp_sim::{AgeMatrix, BitSet};
/// let mut m = AgeMatrix::new(8);
/// m.insert(3); // oldest
/// m.insert(5);
/// m.insert(1); // youngest
/// let mut ready = BitSet::new(8);
/// ready.set(5);
/// ready.set(1);
/// // Slot 3 is not ready, so the oldest *ready* is slot 5.
/// assert_eq!(m.pick_oldest(&ready), Some(5));
/// ```
#[derive(Clone, Debug)]
pub struct AgeMatrix {
    /// `age[i]` = slots currently holding instructions older than slot i.
    age: Vec<BitSet>,
    valid: BitSet,
    capacity: usize,
}

impl AgeMatrix {
    /// Creates an age matrix over `capacity` slots.
    pub fn new(capacity: usize) -> AgeMatrix {
        AgeMatrix {
            age: (0..capacity).map(|_| BitSet::new(capacity)).collect(),
            valid: BitSet::new(capacity),
            capacity,
        }
    }

    /// The number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.valid.count()
    }

    /// Whether `slot` currently holds a valid (tracked) instruction. Used
    /// by the opt-in invariant checker to cross-check the matrix against
    /// the reservation-station slot array.
    pub fn is_valid(&self, slot: usize) -> bool {
        self.valid.get(slot)
    }

    /// Registers a newly-enqueued instruction in slot `slot`. All currently
    /// valid slots become "older" in its age vector.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn insert(&mut self, slot: usize) {
        assert!(!self.valid.get(slot), "slot {slot} already occupied");
        self.age[slot] = self.valid.clone();
        self.valid.set(slot);
    }

    /// Removes the instruction in `slot` (issue or squash): it disappears
    /// from every other slot's age vector.
    pub fn remove(&mut self, slot: usize) {
        debug_assert!(self.valid.get(slot), "slot {slot} empty");
        self.valid.clear(slot);
        for a in &mut self.age {
            a.clear(slot);
        }
    }

    /// Picks the oldest instruction among `ready` (the BID-vector pick of
    /// the baseline scheduler). Returns `None` when no ready instruction
    /// exists.
    pub fn pick_oldest(&self, ready: &BitSet) -> Option<usize> {
        ready
            .iter_ones()
            .find(|&i| self.valid.get(i) && self.age[i].disjoint(ready))
    }

    /// The CRISP pick (Figure 6): the oldest instruction among
    /// `ready ∧ prio` when that set is non-empty, otherwise the oldest
    /// among `ready`.
    pub fn pick_crisp(&self, ready: &BitSet, prio: &BitSet) -> Option<usize> {
        // PRIO vector = ready ∧ critical, computed by the caller per slot;
        // here `prio` is already that intersection.
        match self.pick_oldest(prio) {
            Some(slot) => Some(slot),
            None => self.pick_oldest(ready),
        }
    }

    /// Serialises the valid vector and every slot's age vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![self.capacity as u64];
        crate::wcodec::push_section(&mut w, self.valid.snapshot_words());
        for a in &self.age {
            crate::wcodec::push_section(&mut w, a.snapshot_words());
        }
        w
    }

    /// Restores state captured by [`AgeMatrix::snapshot_words`] into a
    /// matrix of the same capacity.
    ///
    /// # Errors
    ///
    /// Rejects capacity mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "age-matrix");
        let cap = r.usize()?;
        if cap != self.capacity {
            return Err(format!(
                "age-matrix snapshot: capacity {cap}, expected {}",
                self.capacity
            ));
        }
        self.valid.restore_words(r.section()?)?;
        for a in &mut self.age {
            a.restore_words(r.section()?)?;
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(capacity: usize, ones: &[usize]) -> BitSet {
        let mut b = BitSet::new(capacity);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn bitset_basic_ops() {
        let mut b = BitSet::new(130);
        assert!(!b.any());
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert!(b.get(64));
        assert!(!b.get(63));
        b.clear(64);
        assert!(!b.get(64));
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 129]);
        b.clear_all();
        assert!(!b.any());
    }

    #[test]
    fn bitset_disjoint() {
        let a = bits(70, &[1, 65]);
        let b = bits(70, &[2, 66]);
        let c = bits(70, &[65]);
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn pick_oldest_respects_insertion_order_not_slot_order() {
        let mut m = AgeMatrix::new(16);
        // RAND-style insertion: arbitrary slots, known age order.
        m.insert(9); // oldest
        m.insert(2);
        m.insert(14); // youngest
        let ready = bits(16, &[2, 9, 14]);
        assert_eq!(m.pick_oldest(&ready), Some(9));
        let ready2 = bits(16, &[2, 14]);
        assert_eq!(m.pick_oldest(&ready2), Some(2));
    }

    #[test]
    fn remove_frees_age_relations() {
        let mut m = AgeMatrix::new(8);
        m.insert(0);
        m.insert(1);
        m.remove(0);
        // Slot 1 is now the oldest overall.
        let ready = bits(8, &[1]);
        assert_eq!(m.pick_oldest(&ready), Some(1));
        // Reusing slot 0 makes it the *youngest*.
        m.insert(0);
        let both = bits(8, &[0, 1]);
        assert_eq!(m.pick_oldest(&both), Some(1));
    }

    #[test]
    fn crisp_pick_prefers_prio_then_falls_back() {
        let mut m = AgeMatrix::new(8);
        m.insert(3); // oldest
        m.insert(5);
        m.insert(6); // youngest, critical
        let ready = bits(8, &[3, 5, 6]);
        let prio = bits(8, &[6]);
        assert_eq!(m.pick_crisp(&ready, &prio), Some(6));
        // Without priority the oldest wins.
        let empty = BitSet::new(8);
        assert_eq!(m.pick_crisp(&ready, &empty), Some(3));
    }

    #[test]
    fn crisp_pick_orders_within_prio_by_age() {
        let mut m = AgeMatrix::new(8);
        m.insert(1); // oldest
        m.insert(2);
        m.insert(3); // youngest
        let ready = bits(8, &[1, 2, 3]);
        let prio = bits(8, &[2, 3]);
        assert_eq!(m.pick_crisp(&ready, &prio), Some(2));
    }

    #[test]
    fn pick_none_when_nothing_ready() {
        let mut m = AgeMatrix::new(4);
        m.insert(0);
        let ready = BitSet::new(4);
        assert_eq!(m.pick_oldest(&ready), None);
        assert_eq!(m.pick_crisp(&ready, &ready), None);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_insert_panics() {
        let mut m = AgeMatrix::new(4);
        m.insert(1);
        m.insert(1);
    }

    #[test]
    fn occupancy_tracking() {
        let mut m = AgeMatrix::new(4);
        assert_eq!(m.occupancy(), 0);
        m.insert(0);
        m.insert(3);
        assert_eq!(m.occupancy(), 2);
        m.remove(0);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn sequential_drain_yields_fifo_order() {
        let mut m = AgeMatrix::new(32);
        let order = [7usize, 3, 19, 0, 31, 12];
        for &s in &order {
            m.insert(s);
        }
        let mut ready = bits(32, &order);
        let mut drained = Vec::new();
        while let Some(s) = m.pick_oldest(&ready) {
            drained.push(s);
            ready.clear(s);
            m.remove(s);
        }
        assert_eq!(drained, order.to_vec());
    }
}
