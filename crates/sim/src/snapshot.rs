//! Mid-run checkpoint/restore: the [`Snapshot`] trait, the in-memory
//! [`SimSnapshot`] container the engine emits, and the [`CheckpointSink`]
//! callback that delivers checkpoints while a simulation is running.
//!
//! Every stateful simulator structure — schedulers, predictors, caches,
//! DRAM, the emulator, statistics — serialises its complete mutable state
//! as a flat `Vec<u64>` and restores it into an identically-configured
//! instance. Configuration-derived values (table geometries, capacities)
//! are never serialised; restore validates them against the live instance
//! and rejects mismatches, so a snapshot can only land in a machine shaped
//! exactly like the one that produced it. Durable on-disk framing
//! (versioning, checksums, fingerprints) lives in `crisp-harness`.

use crate::stats::SimResult;
use std::fmt;
use std::sync::Arc;

/// Uniform word-vector serialisation for stateful simulator structures.
///
/// `restore_words(snapshot_words())` into an identically-configured
/// instance is an exact state transfer: a subsequent `snapshot_words` is
/// byte-identical, and all future behaviour matches the original. On
/// error the target's state is unspecified (callers restore into fresh
/// instances and discard on failure).
pub trait Snapshot {
    /// Serialises the structure's complete mutable state.
    fn snapshot_words(&self) -> Vec<u64>;

    /// Restores state captured by [`Snapshot::snapshot_words`] into a
    /// structure of identical configuration.
    ///
    /// # Errors
    ///
    /// Rejects malformed input and snapshots taken from a differently
    /// configured instance, naming the offending structure.
    fn restore_words(&mut self, words: &[u64]) -> Result<(), String>;
}

/// Wires a type's inherent `snapshot_words`/`restore_words` pair into the
/// [`Snapshot`] trait (inherent methods win name resolution, so the
/// delegation below is not self-recursive).
macro_rules! delegate_snapshot {
    ($($t:ty),* $(,)?) => {$(
        impl Snapshot for $t {
            fn snapshot_words(&self) -> Vec<u64> {
                <$t>::snapshot_words(self)
            }
            fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
                <$t>::restore_words(self, words)
            }
        }
    )*};
}

delegate_snapshot!(
    crate::age_matrix::BitSet,
    crate::age_matrix::AgeMatrix,
    crate::bpu::BranchPredictionUnit,
    crate::stats::UpcTimeline,
    crate::stats::Pipeview,
    crate::stats::SimResult,
    crisp_uarch::Bimodal,
    crisp_uarch::Gshare,
    crisp_uarch::Tage,
    crisp_uarch::Btb,
    crisp_uarch::Ras,
    crisp_uarch::IndirectPredictor,
    crisp_mem::Cache,
    crisp_mem::Dram,
    crisp_mem::StreamPrefetcher,
    crisp_mem::StridePrefetcher,
    crisp_mem::Bop,
    crisp_mem::Ghb,
    crisp_mem::GhbWidth,
    crisp_mem::Sisb,
    crisp_mem::Spp,
    crisp_mem::MemoryHierarchy,
    crisp_emu::Memory,
    crisp_emu::Emulator<'_>,
    crisp_obs::Tracer,
    crisp_obs::FlightRecorder,
    crisp_obs::StallTable,
    crisp_obs::TelemetryLog,
);

/// One full-machine checkpoint, taken at a cycle boundary on the engine's
/// cooperative poll path.
///
/// The snapshot covers everything the engine mutates — frontend, window,
/// scheduler, memory hierarchy, branch predictors and statistics — but not
/// the immutable inputs (program, trace, criticality map, configuration):
/// a resumed run must be given the same inputs, and restore validates the
/// structural echoes it carries (trace length, table geometries) against
/// them. On-disk integrity (format version, CRCs, config fingerprint) is
/// the harness checkpoint container's job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Named state sections: `engine`, `mem`, `bpu`, `stats`.
    pub sections: Vec<(String, Vec<u64>)>,
}

impl SimSnapshot {
    /// The words of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&[u64]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
    }

    /// Total payload size in words across all sections.
    pub fn words(&self) -> usize {
        self.sections.iter().map(|(_, w)| w.len()).sum()
    }
}

/// A checkpoint consumer invoked synchronously from the engine's poll
/// path; clones share the underlying callback.
///
/// The callback must only observe the snapshot (write it out, clone it
/// into a buffer) — it runs on the simulation thread and its latency adds
/// directly to the run.
#[derive(Clone)]
pub struct CheckpointSink {
    f: Arc<dyn Fn(&SimSnapshot) + Send + Sync>,
}

impl CheckpointSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&SimSnapshot) + Send + Sync + 'static) -> CheckpointSink {
        CheckpointSink { f: Arc::new(f) }
    }

    /// Delivers one checkpoint.
    pub fn emit(&self, snapshot: &SimSnapshot) {
        (self.f)(snapshot)
    }
}

impl fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CheckpointSink(..)")
    }
}

/// Outcome of a successful [`crate::Simulator::audit_restore`] run.
#[derive(Clone, Debug)]
pub struct RestoreAudit {
    /// Straight-through run length in cycles.
    pub cycles: u64,
    /// Checkpoints captured and re-verified by resumption.
    pub checkpoints_verified: usize,
    /// The straight-through result (byte-identical to every resumed run's
    /// result — that is what the audit proved).
    pub result: SimResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_lookup_and_size() {
        let s = SimSnapshot {
            cycle: 42,
            sections: vec![
                ("engine".to_string(), vec![1, 2, 3]),
                ("mem".to_string(), vec![4]),
            ],
        };
        assert_eq!(s.section("engine"), Some(&[1u64, 2, 3][..]));
        assert_eq!(s.section("bpu"), None);
        assert_eq!(s.words(), 4);
    }

    #[test]
    fn sink_delivers_and_debug_is_opaque() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&seen);
        let sink = CheckpointSink::new(move |s| store.lock().expect("lock").push(s.cycle));
        let snap = SimSnapshot {
            cycle: 7,
            sections: Vec::new(),
        };
        sink.clone().emit(&snap);
        sink.emit(&snap);
        assert_eq!(*seen.lock().expect("lock"), vec![7, 7]);
        assert_eq!(format!("{sink:?}"), "CheckpointSink(..)");
    }

    #[test]
    fn trait_objects_round_trip_through_dyn() {
        // The trait is object-safe and the delegation reaches the inherent
        // implementations.
        let mut ras = crisp_uarch::Ras::new(4);
        ras.push(0x10);
        let dyn_ras: &dyn Snapshot = &ras;
        let words = dyn_ras.snapshot_words();
        let mut fresh = crisp_uarch::Ras::new(4);
        let dyn_fresh: &mut dyn Snapshot = &mut fresh;
        dyn_fresh.restore_words(&words).unwrap();
        assert_eq!(fresh.pop(), Some(0x10));
    }
}
