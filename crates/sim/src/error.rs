//! Typed simulator errors: configuration rejection, watchdog deadlock
//! reports and invariant-checker violations.

use crisp_isa::Pc;
use std::fmt;

pub use crisp_isa::ConfigError;

/// The pipeline state of the ROB-head instruction in a deadlock dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeadState {
    /// Dispatched but not yet picked by the scheduler.
    WaitingToIssue,
    /// Issued and executing (completion cycle in the future).
    Executing,
    /// Complete and eligible to retire.
    ReadyToRetire,
}

impl fmt::Display for HeadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadState::WaitingToIssue => write!(f, "waiting to issue"),
            HeadState::Executing => write!(f, "executing"),
            HeadState::ReadyToRetire => write!(f, "ready to retire"),
        }
    }
}

/// Diagnostic snapshot taken when the no-retire-progress watchdog fires:
/// everything needed to see *why* the machine is stuck without re-running
/// under a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Cycles since the last retirement.
    pub stalled_for: u64,
    /// Instructions retired before the hang.
    pub retired: u64,
    /// Total instructions in the trace.
    pub total: u64,
    /// PC and state of the ROB head, if the ROB is non-empty.
    pub rob_head: Option<(Pc, HeadState)>,
    /// ROB occupancy / capacity.
    pub rob: (usize, usize),
    /// Reservation-station occupancy / capacity.
    pub rs: (usize, usize),
    /// Load-buffer occupancy / capacity.
    pub loads: (usize, usize),
    /// Store-buffer occupancy / capacity.
    pub stores: (usize, usize),
    /// Sequence number and PC of the oldest instruction that never issued.
    pub oldest_unissued: Option<(u64, Pc)>,
    /// The flight recorder's most recent pipeline events (empty unless the
    /// run had `tracer_capacity` set): concrete pipeline history for the
    /// cycles leading into the hang.
    pub recent_events: Vec<crisp_obs::TraceEvent>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulator deadlock at cycle {}: no retirement for {} cycles (retired {}/{})",
            self.cycle, self.stalled_for, self.retired, self.total
        )?;
        match self.rob_head {
            Some((pc, state)) => writeln!(f, "  ROB head: pc {pc}, {state}")?,
            None => writeln!(f, "  ROB head: <empty>")?,
        }
        writeln!(
            f,
            "  occupancy: ROB {}/{}, RS {}/{}, LQ {}/{}, SQ {}/{}",
            self.rob.0,
            self.rob.1,
            self.rs.0,
            self.rs.1,
            self.loads.0,
            self.loads.1,
            self.stores.0,
            self.stores.1
        )?;
        match self.oldest_unissued {
            Some((seq, pc)) => write!(f, "  oldest unissued: seq {seq}, pc {pc}")?,
            None => write!(f, "  oldest unissued: <none>")?,
        }
        if !self.recent_events.is_empty() {
            write!(
                f,
                "\n  flight recorder ({} events):",
                self.recent_events.len()
            )?;
            for e in self.recent_events.iter().rev().take(8) {
                write!(
                    f,
                    "\n    cycle {} seq {} pc {:#x} {}",
                    e.cycle,
                    e.seq,
                    e.pc,
                    e.kind.label()
                )?;
            }
        }
        Ok(())
    }
}

/// Errors from constructing or running the cycle simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`crate::SimConfig::validate`].
    Config(ConfigError),
    /// The criticality map does not cover the program.
    CriticalityMapLength {
        /// `program.len()`.
        expected: usize,
        /// The map length actually supplied.
        actual: usize,
    },
    /// The no-retire-progress watchdog fired.
    Deadlock(Box<DeadlockReport>),
    /// The opt-in invariant checker found an inconsistency (a simulator
    /// bug, not a user error).
    InvariantViolation {
        /// Cycle of the violation.
        cycle: u64,
        /// Which invariant failed.
        message: String,
    },
    /// The run's [`crate::CancelToken`] was cancelled (cooperative abort
    /// at the next poll point; the machine state is abandoned cleanly).
    Cancelled {
        /// Cycle at which the poll observed the cancellation.
        cycle: u64,
        /// Instructions retired before the abort.
        retired: u64,
        /// Total instructions in the trace.
        total: u64,
    },
    /// The run's [`crate::CancelToken`] wall-clock deadline passed — the
    /// supervisor-facing timeout, distinct from [`SimError::Deadlock`]:
    /// the machine may still be making (slow) progress.
    DeadlineExceeded {
        /// Cycle at which the poll observed the expired deadline.
        cycle: u64,
        /// Instructions retired before the abort.
        retired: u64,
        /// Total instructions in the trace.
        total: u64,
    },
    /// The run hit [`crate::SimConfig::cycle_budget`] before retiring the
    /// whole trace — a deterministic overrun, unlike a wall-clock timeout.
    CycleBudgetExhausted {
        /// The configured budget.
        budget: u64,
        /// Instructions retired within the budget.
        retired: u64,
        /// Total instructions in the trace.
        total: u64,
    },
    /// A [`crate::SimConfig::restore`] snapshot failed to apply: it is
    /// malformed, or it was taken from a machine with different
    /// configuration or inputs than the one restoring it.
    SnapshotRestore {
        /// Which snapshot section failed (`engine`, `mem`, `bpu`,
        /// `stats`).
        section: String,
        /// The decoder's explanation.
        message: String,
    },
    /// The checkpoint/restore determinism audit
    /// ([`crate::Simulator::audit_restore`]) found a divergence: resuming
    /// from a checkpoint produced final statistics different from the
    /// straight-through run.
    RestoreAuditDivergence {
        /// Cycle of the checkpoint whose resumed run diverged.
        checkpoint_cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::CriticalityMapLength { expected, actual } => write!(
                f,
                "criticality map length mismatch: program has {expected} instructions, map has {actual} bits"
            ),
            SimError::Deadlock(report) => write!(f, "{report}"),
            SimError::InvariantViolation { cycle, message } => {
                write!(f, "invariant violation at cycle {cycle}: {message}")
            }
            SimError::Cancelled {
                cycle,
                retired,
                total,
            } => write!(
                f,
                "simulation cancelled at cycle {cycle} (retired {retired}/{total})"
            ),
            SimError::DeadlineExceeded {
                cycle,
                retired,
                total,
            } => write!(
                f,
                "wall-clock deadline exceeded at cycle {cycle} (retired {retired}/{total})"
            ),
            SimError::CycleBudgetExhausted {
                budget,
                retired,
                total,
            } => write!(
                f,
                "cycle budget of {budget} exhausted (retired {retired}/{total})"
            ),
            SimError::SnapshotRestore { section, message } => {
                write!(f, "checkpoint restore failed in section '{section}': {message}")
            }
            SimError::RestoreAuditDivergence { checkpoint_cycle } => write!(
                f,
                "determinism audit failed: the run resumed from the checkpoint at cycle \
                 {checkpoint_cycle} diverged from the straight-through run"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_report_renders_all_sections() {
        let r = DeadlockReport {
            cycle: 5_000_000,
            stalled_for: 2_000_000,
            retired: 1234,
            total: 9999,
            rob_head: Some((42, HeadState::WaitingToIssue)),
            rob: (224, 224),
            rs: (96, 96),
            loads: (10, 64),
            stores: (0, 128),
            oldest_unissued: Some((1234, 42)),
            recent_events: vec![crisp_obs::TraceEvent {
                cycle: 4_999_999,
                seq: 1234,
                pc: 0xa8,
                kind: crisp_obs::EventKind::Dispatch,
                fill: None,
            }],
        };
        let s = r.to_string();
        assert!(s.contains("cycle 5000000"));
        assert!(s.contains("pc 42, waiting to issue"));
        assert!(s.contains("ROB 224/224"));
        assert!(s.contains("oldest unissued: seq 1234"));
        assert!(s.contains("flight recorder (1 events)"));
        assert!(s.contains("cycle 4999999 seq 1234 pc 0xa8 Ds"));
    }

    #[test]
    fn abort_variants_report_progress() {
        let c = SimError::Cancelled {
            cycle: 10,
            retired: 3,
            total: 9,
        };
        assert!(c.to_string().contains("cancelled at cycle 10"));
        assert!(c.to_string().contains("3/9"));
        let d = SimError::DeadlineExceeded {
            cycle: 20,
            retired: 4,
            total: 9,
        };
        assert!(d.to_string().contains("deadline exceeded"));
        let b = SimError::CycleBudgetExhausted {
            budget: 1000,
            retired: 5,
            total: 9,
        };
        assert!(b.to_string().contains("budget of 1000"));
    }

    #[test]
    fn snapshot_errors_name_the_failure() {
        let e = SimError::SnapshotRestore {
            section: "engine".to_string(),
            message: "truncated at word 3".to_string(),
        };
        assert!(e.to_string().contains("section 'engine'"));
        assert!(e.to_string().contains("truncated at word 3"));
        let d = SimError::RestoreAuditDivergence {
            checkpoint_cycle: 8192,
        };
        assert!(d.to_string().contains("cycle 8192"));
    }

    #[test]
    fn map_length_error_is_actionable() {
        let e = SimError::CriticalityMapLength {
            expected: 100,
            actual: 7,
        };
        assert!(e.to_string().contains("program has 100"));
        assert!(e.to_string().contains("map has 7"));
    }
}
