use crisp_isa::{CtrlKind, StaticInst};
use crisp_uarch::{Btb, DirectionPredictor, IndirectPredictor, Ras, Tage, TageConfig};

/// Branch-prediction-unit configuration.
#[derive(Clone, Copy, Debug)]
pub struct BpuConfig {
    /// TAGE configuration for conditional-branch direction.
    pub tage: TageConfig,
    /// BTB entries (Table 1: 8K).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Indirect-target-predictor entries.
    pub indirect_entries: usize,
}

impl Default for BpuConfig {
    fn default() -> BpuConfig {
        BpuConfig {
            tage: TageConfig::default(),
            btb_entries: 8192,
            btb_ways: 4,
            ras_depth: 32,
            indirect_entries: 8192,
        }
    }
}

/// The prediction outcome for one fetched control instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchOutcome {
    /// The fetched instruction redirects fetch and the frontend got the
    /// direction or target wrong — the pipeline must stall fetch until this
    /// instruction resolves.
    pub mispredicted: bool,
    /// The control transfer was taken but missed the BTB (a short fetch
    /// bubble while decode discovers the branch).
    pub btb_miss_taken: bool,
}

/// The decoupled frontend's branch prediction unit: TAGE + BTB + RAS +
/// indirect predictor, driven in fetch order.
///
/// The unit is fed the *actual* outcome with every prediction (the trace is
/// the correct path), so predictors train at fetch — the standard
/// trace-driven approximation of retire-time training.
#[derive(Clone, Debug)]
pub struct BranchPredictionUnit {
    tage: Tage,
    btb: Btb,
    ras: Ras,
    indirect: IndirectPredictor,
    cond_branches: u64,
    cond_mispredicts: u64,
    indirect_mispredicts: u64,
    ras_mispredicts: u64,
}

impl BranchPredictionUnit {
    /// Builds the BPU.
    pub fn new(config: BpuConfig) -> BranchPredictionUnit {
        BranchPredictionUnit {
            tage: Tage::new(config.tage),
            btb: Btb::new(config.btb_entries, config.btb_ways),
            ras: Ras::new(config.ras_depth),
            indirect: IndirectPredictor::new(config.indirect_entries, 16),
            cond_branches: 0,
            cond_mispredicts: 0,
            indirect_mispredicts: 0,
            ras_mispredicts: 0,
        }
    }

    /// Predicts the control instruction `inst` fetched at byte address
    /// `pc_addr`, with actual outcome `taken` and actual successor byte
    /// address `target_addr` (the fall-through address for not-taken
    /// branches is `fallthrough_addr`).
    pub fn observe(
        &mut self,
        inst: &StaticInst,
        pc_addr: u64,
        taken: bool,
        target_addr: u64,
        fallthrough_addr: u64,
    ) -> BranchOutcome {
        let kind = match inst.ctrl_kind() {
            Some(k) => k,
            None => return BranchOutcome::default(),
        };
        let mut out = BranchOutcome::default();
        let btb_hit = self.btb.lookup(pc_addr).is_some();
        match kind {
            CtrlKind::CondBranch => {
                self.cond_branches += 1;
                let pred = self.tage.predict(pc_addr);
                self.tage.update(pc_addr, taken, pred);
                if pred != taken {
                    out.mispredicted = true;
                    self.cond_mispredicts += 1;
                } else if taken && !btb_hit {
                    out.btb_miss_taken = true;
                }
                self.btb.insert(pc_addr, target_addr, kind);
            }
            CtrlKind::Jump => {
                // Direct jumps resolve at decode; a BTB miss costs a bubble.
                if !btb_hit {
                    out.btb_miss_taken = true;
                }
                self.btb.insert(pc_addr, target_addr, kind);
            }
            CtrlKind::Call => {
                if !btb_hit {
                    out.btb_miss_taken = true;
                }
                self.ras.push(fallthrough_addr);
                self.btb.insert(pc_addr, target_addr, kind);
            }
            CtrlKind::Ret => {
                match self.ras.pop() {
                    Some(pred_target) if pred_target == target_addr => {}
                    _ => {
                        out.mispredicted = true;
                        self.ras_mispredicts += 1;
                    }
                }
                self.btb.insert(pc_addr, target_addr, kind);
            }
            CtrlKind::IndirectJump => {
                let pred = self.indirect.predict(pc_addr);
                if pred != Some(target_addr) {
                    out.mispredicted = true;
                    self.indirect_mispredicts += 1;
                }
                self.indirect.update(pc_addr, target_addr);
                self.btb.insert(pc_addr, target_addr, kind);
            }
        }
        out
    }

    /// Serialises all four predictors and the misprediction counters as a
    /// word vector.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.cond_branches,
            self.cond_mispredicts,
            self.indirect_mispredicts,
            self.ras_mispredicts,
        ];
        crate::wcodec::push_section(&mut w, self.tage.snapshot_words());
        crate::wcodec::push_section(&mut w, self.btb.snapshot_words());
        crate::wcodec::push_section(&mut w, self.ras.snapshot_words());
        crate::wcodec::push_section(&mut w, self.indirect.snapshot_words());
        w
    }

    /// Restores state captured by
    /// [`BranchPredictionUnit::snapshot_words`] into an identically
    /// configured unit. On error the unit's state is unspecified.
    ///
    /// # Errors
    ///
    /// Rejects predictor-geometry mismatches and malformed input.
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut r = crate::wcodec::Reader::new(words, "bpu");
        self.cond_branches = r.u64()?;
        self.cond_mispredicts = r.u64()?;
        self.indirect_mispredicts = r.u64()?;
        self.ras_mispredicts = r.u64()?;
        self.tage.restore_words(r.section()?)?;
        self.btb.restore_words(r.section()?)?;
        self.ras.restore_words(r.section()?)?;
        self.indirect.restore_words(r.section()?)?;
        r.finish()
    }

    /// `(conditional branches, conditional mispredicts, indirect
    /// mispredicts, return mispredicts)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.cond_branches,
            self.cond_mispredicts,
            self.indirect_mispredicts,
            self.ras_mispredicts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{Cond, Opcode, StaticInst};

    fn branch_inst() -> StaticInst {
        StaticInst::nullary(Opcode::Branch(Cond::Eq))
    }

    fn call_inst() -> StaticInst {
        StaticInst::nullary(Opcode::Call)
    }

    fn ret_inst() -> StaticInst {
        StaticInst::nullary(Opcode::Ret)
    }

    #[test]
    fn biased_branch_stops_mispredicting() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let inst = branch_inst();
        let mut late_mispredicts = 0;
        for i in 0..200 {
            let out = bpu.observe(&inst, 0x100, true, 0x40, 0x103);
            if i >= 100 && out.mispredicted {
                late_mispredicts += 1;
            }
        }
        assert_eq!(late_mispredicts, 0);
    }

    #[test]
    fn call_ret_pairs_predict_via_ras() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let call = call_inst();
        let ret = ret_inst();
        // Matching call/ret: the return is predicted after warm-up.
        let mut mispredicts = 0;
        for i in 0..10 {
            bpu.observe(&call, 0x10, true, 0x100, 0x15);
            let out = bpu.observe(&ret, 0x110, true, 0x15, 0x111);
            if i > 0 && out.mispredicted {
                mispredicts += 1;
            }
        }
        assert_eq!(mispredicts, 0);
    }

    #[test]
    fn unbalanced_ret_mispredicts() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let out = bpu.observe(&ret_inst(), 0x100, true, 0x555, 0x101);
        assert!(out.mispredicted, "empty RAS must mispredict");
    }

    #[test]
    fn first_taken_branch_pays_btb_miss() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let inst = branch_inst();
        // Train direction first via a not-taken outcome at another pc so
        // the default prediction may match; check the first *taken*
        // correct prediction flags a BTB miss, not a mispredict.
        let mut saw_btb_miss = false;
        for _ in 0..50 {
            let out = bpu.observe(&inst, 0x200, true, 0x80, 0x203);
            if !out.mispredicted && out.btb_miss_taken {
                saw_btb_miss = true;
                break;
            }
        }
        assert!(saw_btb_miss);
        // After insertion, no more BTB misses.
        let out = bpu.observe(&inst, 0x200, true, 0x80, 0x203);
        assert!(!out.btb_miss_taken);
    }

    #[test]
    fn stable_indirect_target_learns() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let jmp = StaticInst::nullary(Opcode::JumpInd);
        let first = bpu.observe(&jmp, 0x300, true, 0x1000, 0x303);
        assert!(first.mispredicted, "cold indirect target unknown");
        let mut late = 0;
        for i in 0..50 {
            let out = bpu.observe(&jmp, 0x300, true, 0x1000, 0x303);
            if i > 5 && out.mispredicted {
                late += 1;
            }
        }
        assert_eq!(late, 0);
    }

    #[test]
    fn non_ctrl_instruction_is_ignored() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let nop = StaticInst::nullary(Opcode::Nop);
        let out = bpu.observe(&nop, 0x1, false, 0, 0x2);
        assert_eq!(out, BranchOutcome::default());
        assert_eq!(bpu.stats().0, 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_predictors_and_counters() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let inst = branch_inst();
        for i in 0..50 {
            bpu.observe(&inst, 0x100, i % 3 == 0, 0x40, 0x103);
        }
        bpu.observe(&call_inst(), 0x10, true, 0x100, 0x15);
        let words = bpu.snapshot_words();
        let mut other = BranchPredictionUnit::new(BpuConfig::default());
        other.restore_words(&words).unwrap();
        assert_eq!(other.snapshot_words(), words);
        assert_eq!(other.stats(), bpu.stats());
        // The restored unit continues in lockstep with the original.
        for i in 0..30 {
            let a = bpu.observe(&inst, 0x100, i % 3 == 0, 0x40, 0x103);
            let b = other.observe(&inst, 0x100, i % 3 == 0, 0x40, 0x103);
            assert_eq!(a, b);
        }
        assert_eq!(other.snapshot_words(), bpu.snapshot_words());
        // A differently shaped BPU rejects the snapshot.
        let mut wrong = BranchPredictionUnit::new(BpuConfig {
            btb_entries: 4096,
            ..BpuConfig::default()
        });
        assert!(wrong.restore_words(&words).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut bpu = BranchPredictionUnit::new(BpuConfig::default());
        let inst = branch_inst();
        for i in 0..10 {
            bpu.observe(&inst, 0x100, i % 2 == 0, 0x40, 0x103);
        }
        let (branches, mispredicts, _, _) = bpu.stats();
        assert_eq!(branches, 10);
        assert!(mispredicts > 0);
    }
}
