//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! simulation and its supervisor. The engine polls it every
//! [`crate::SimConfig::cancel_check_interval`] cycles and aborts *itself*
//! into the [`crate::SimError`] taxonomy — the run is never killed from
//! outside, so statistics, journals and thread state stay consistent. Two
//! conditions can trip the token:
//!
//! * an explicit [`CancelToken::cancel`] call (user interrupt, sweep
//!   shutdown), surfacing as [`crate::SimError::Cancelled`];
//! * an optional wall-clock deadline fixed at construction, surfacing as
//!   [`crate::SimError::DeadlineExceeded`] — the per-job timeout of the
//!   experiment supervisor.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a polled [`CancelToken`] wants the simulation to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's wall-clock deadline passed.
    DeadlineExceeded,
}

/// A shared stop-request flag with an optional wall-clock deadline.
///
/// Cloning is cheap (an [`Arc`] bump); all clones observe the same
/// cancellation state. The default token never aborts anything.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; aborts only on [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// A token *linked* to this one: both share the same cancellation
    /// flag (cancelling either aborts both), while the linked token
    /// carries its own wall-clock deadline. The experiment supervisor
    /// uses this to give every attempt a fresh deadline that still
    /// observes a sweep-wide stop request (graceful drain).
    pub fn linked(&self, timeout: Option<Duration>) -> CancelToken {
        CancelToken {
            cancelled: Arc::clone(&self.cancelled),
            deadline: timeout.map(|t| Instant::now() + t),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Polls the token: `None` means keep running. Explicit cancellation
    /// wins over an expired deadline when both hold.
    pub fn should_abort(&self) -> Option<AbortReason> {
        if self.is_cancelled() {
            return Some(AbortReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(AbortReason::DeadlineExceeded);
        }
        None
    }
}

/// A shared progress beacon: the engine publishes (cycle, retired) on its
/// cancellation-poll path, and an external supervisor samples it to
/// journal heartbeat records. Like [`CancelToken`], cloning is an [`Arc`]
/// bump and every clone observes the same values; the beacon never
/// influences simulation state, so it is deliberately *not* part of the
/// snapshot protocol.
#[derive(Clone, Debug, Default)]
pub struct ProgressBeacon {
    inner: Arc<(AtomicU64, AtomicU64)>,
}

impl ProgressBeacon {
    /// A fresh beacon reading `(0, 0)`.
    pub fn new() -> ProgressBeacon {
        ProgressBeacon::default()
    }

    /// Publishes the engine's current cycle and retired-instruction count.
    pub fn publish(&self, cycle: u64, retired: u64) {
        self.inner.0.store(cycle, Ordering::Relaxed);
        self.inner.1.store(retired, Ordering::Relaxed);
    }

    /// The most recently published `(cycle, retired)` pair.
    pub fn read(&self) -> (u64, u64) {
        (
            self.inner.0.load(Ordering::Relaxed),
            self.inner.1.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_is_shared_across_clones() {
        let b = ProgressBeacon::new();
        let clone = b.clone();
        assert_eq!(clone.read(), (0, 0));
        b.publish(8192, 4000);
        assert_eq!(clone.read(), (8192, 4000));
    }

    #[test]
    fn fresh_token_never_aborts() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.should_abort(), None);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.should_abort(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn linked_tokens_share_the_flag_but_not_the_deadline() {
        let stop = CancelToken::new();
        let child = stop.linked(Some(Duration::from_secs(3600)));
        assert_eq!(child.should_abort(), None);
        stop.cancel();
        assert_eq!(child.should_abort(), Some(AbortReason::Cancelled));

        let stop = CancelToken::new();
        let expired = stop.linked(Some(Duration::ZERO));
        assert_eq!(expired.should_abort(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(stop.should_abort(), None, "deadline stays on the child");
        expired.cancel();
        assert!(stop.is_cancelled(), "the flag is shared both ways");
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.should_abort(), Some(AbortReason::DeadlineExceeded));
        assert!(!t.is_cancelled(), "deadline expiry is not cancellation");
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.should_abort(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn distant_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.should_abort(), None);
    }
}
