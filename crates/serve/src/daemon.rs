//! The sweep daemon: accept loop, bounded admission queue, serial job
//! executor, graceful drain, crash recovery.
//!
//! ## Lifecycle state machine
//!
//! ```text
//!            POST /jobs            executor picks it up
//!  (client) ───────────► QUEUED ────────────────────► RUNNING
//!                          ▲                            │
//!        restart: recover()│          result.json       ├─► DONE / FAILED
//!        re-queues every   │          (atomic write)    │
//!        admitted job with │                            │ SIGTERM: cells
//!        no result.json ───┘◄───────────────────────────┘ abort, job stays
//!                                                         admitted → re-queued
//!                                                         on next start
//! ```
//!
//! Robustness invariants:
//!
//! - a job is *admitted* exactly when its `request.json` is durably on
//!   disk — the 202 response is sent only after that write, so an
//!   acknowledged job can never be lost by a crash;
//! - the queue is bounded: overflow is refused with 429 + `Retry-After`
//!   *before* any disk write, so backpressure costs nothing;
//! - job ids are content-addressed (FNV-1a over the canonical cell
//!   set), so duplicate submissions — including a client retrying an
//!   acknowledged submit after a crash — coalesce instead of running
//!   twice;
//! - each job's sweep journals to its own `run.jsonl` and publishes
//!   cells to the shared store, so after SIGKILL the resumed sweep
//!   recomputes only what was in flight and re-serves the rest from
//!   the store: each unique cell is simulated at most once.

use crate::api::{error_body, JobState, SubmitRequest};
use crate::http::{
    read_request, write_chunk, write_chunk_end, write_chunked_head, write_response, HttpLimits,
    Request,
};
use crate::metrics::{Counter, Gauge, Histogram, LabeledCounter, Metrics};
use crate::registry::{JobRecord, Registry};
use crisp_harness::json::Value;
use crisp_harness::{load_manifest, spanlog, PoolStatus};
use crisp_obs::SpanRec;
use crisp_sim::CancelToken;
use crisp_store::{fnv1a128, key_hex, LockOptions, Store};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Seek, SeekFrom};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default bound on jobs admitted but not yet finished.
pub const DEFAULT_QUEUE_CAP: usize = 16;

/// A validated, canonicalized submission — what the planner returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPlan {
    /// The submission with defaults filled in (what gets persisted).
    pub request: SubmitRequest,
    /// Sweep spec string (the manifest header's identity).
    pub spec: String,
    /// Store key of every cell in the job, in catalog order.
    pub cells: Vec<u128>,
}

/// Turns a submission into a plan, or a one-line 400 reason.
pub type PlanFn<'a> = dyn Fn(&SubmitRequest) -> Result<JobPlan, String> + Send + Sync + 'a;

/// Everything an executor needs to run (or resume) one job's sweep.
#[derive(Clone, Debug)]
pub struct ExecCtx {
    /// The job's manifest path inside its registry directory.
    pub manifest: PathBuf,
    /// Whether a previous attempt left a manifest to resume from.
    pub resume: bool,
    /// The shared result store directory.
    pub store: PathBuf,
    /// Drain token: executors must wire this into the supervisor so
    /// SIGTERM reaches in-flight cells.
    pub stop: CancelToken,
    /// Trace id for the job's cross-process span log (the job id, hex).
    pub trace: String,
    /// The per-job `spans.jsonl` every layer appends to (see
    /// `crisp_harness::spanlog`).
    pub spans: PathBuf,
    /// Span id of the daemon's `execute` span — the parent under which
    /// the executor's layers (supervisor, workers) hang their spans.
    pub span_parent: u64,
}

/// What one job's sweep produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecResult {
    /// Rendered report tables (byte-identical across resumes).
    pub rendered: String,
    /// Cells that completed.
    pub completed: usize,
    /// Cells that failed permanently.
    pub failed: usize,
    /// The sweep was drained before finishing — the job must stay
    /// incomplete and be re-queued on the next start.
    pub interrupted: bool,
    /// Cells served from the store.
    pub store_hits: usize,
    /// Cells simulated and published.
    pub store_computed: usize,
    /// Per-prefetcher effectiveness totals the job's cells observed
    /// (mechanism name → issued/useful/late). Feeds the labeled
    /// `crisp_prefetch_*_total` families; empty when the executor has
    /// nothing to report.
    pub prefetch: Vec<PrefetchTotals>,
}

/// Per-prefetcher issued/useful/late totals from one job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchTotals {
    /// Mechanism name (`spp`, `ghbw`, `crisp`, …) — the label value.
    pub name: String,
    /// Prefetches issued into the hierarchy.
    pub issued: u64,
    /// Issued prefetches a demand access later hit.
    pub useful: u64,
    /// Useful but still in flight when demand arrived.
    pub late: u64,
}

/// Runs one job's sweep, or returns a one-line executor failure.
pub type ExecFn<'a> = dyn Fn(&JobRecord, &ExecCtx) -> Result<ExecResult, String> + Send + Sync + 'a;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (the actual endpoint is
    /// written to `<data>/endpoint`).
    pub addr: String,
    /// Data directory: job registry, endpoint file, exclusivity lock.
    pub data_dir: PathBuf,
    /// Result store directory (defaults to `<data>/store` when `None`).
    pub store_dir: Option<PathBuf>,
    /// Maximum admitted-but-unfinished jobs before 429.
    pub queue_cap: usize,
    /// Maximum concurrent connections before 503.
    pub max_connections: usize,
    /// Request head/body size limits.
    pub limits: HttpLimits,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Value advertised in `Retry-After` on 429/503.
    pub retry_after: Duration,
    /// Worker-pool gauges (`--workers N`): exported into `/stats`, and
    /// `/readyz` answers 503 until the pool's handshake completes.
    /// `None` means the in-process executor — no pool gating.
    pub pool: Option<Arc<PoolStatus>>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("crisp-serve-data"),
            store_dir: None,
            queue_cap: DEFAULT_QUEUE_CAP,
            max_connections: 32,
            limits: HttpLimits::default(),
            io_timeout: Duration::from_secs(5),
            retry_after: Duration::from_secs(2),
            pool: None,
        }
    }
}

/// Job-id derivation: content-addressed over the canonical cell set, so
/// two submissions describing the same work collide on purpose.
pub fn job_id(spec: &str, cells: &[u128]) -> u128 {
    let mut material = format!("crisp-serve-job-v1\nspec={spec}\ncells=");
    for key in cells {
        material.push_str(&key_hex(*key));
        material.push(',');
    }
    fnv1a128(material.as_bytes())
}

/// Shared mutable daemon state.
struct State {
    registry: Registry,
    queue: Mutex<VecDeque<u128>>,
    running: Mutex<Option<u128>>,
    admitted_total: AtomicUsize,
    rejected_busy: AtomicUsize,
    connections: AtomicUsize,
    worker_parked: AtomicBool,
    started: Instant,
    store_dir: PathBuf,
    /// Cells served warm from the store / simulated fresh, accumulated
    /// across finished jobs — `/stats` and `/metrics` agree on these.
    store_hits_total: AtomicUsize,
    store_misses_total: AtomicUsize,
    /// Admission wall-clock per queued job, so the executor can emit
    /// the `queue` span and close the root `job` span.
    submitted_ns: Mutex<HashMap<u128, u64>>,
    metrics: DaemonMetrics,
}

/// The Prometheus families behind `GET /metrics`.
///
/// Counters with an authoritative source elsewhere (the daemon's
/// sequentially-consistent atomics, the pool gauges, the store stats
/// file) are synchronized at scrape time via [`sync_counter`], so
/// `/metrics` and `/stats` always tell the same story. The histograms
/// are observed inline (request latency, job duration) — they exist
/// only here.
struct DaemonMetrics {
    registry: Metrics,
    http_requests_total: Counter,
    http_request_seconds: Histogram,
    job_seconds: Histogram,
    queue_depth: Gauge,
    queue_cap: Gauge,
    jobs_admitted: Gauge,
    jobs_finished: Gauge,
    jobs_admitted_total: Counter,
    jobs_rejected_total: Counter,
    connections: Gauge,
    draining: Gauge,
    uptime_seconds: Gauge,
    store_entries: Gauge,
    store_bytes: Gauge,
    store_quarantined: Gauge,
    store_hits_total: Counter,
    store_misses_total: Counter,
    pool_ready: Gauge,
    workers_alive: Gauge,
    workers_busy: Gauge,
    leases_held: Gauge,
    lease_steals_total: Counter,
    poisoned_cells: Gauge,
    worker_crashes_total: Counter,
    prefetch_issued_total: LabeledCounter,
    prefetch_useful_total: LabeledCounter,
    prefetch_late_total: LabeledCounter,
}

/// Advances a scrape-synchronized counter to an externally-tracked
/// monotonic value without ever going backwards.
fn sync_counter(c: &Counter, v: u64) {
    c.add(v.saturating_sub(c.get()));
}

impl DaemonMetrics {
    fn new() -> DaemonMetrics {
        let m = Metrics::new();
        DaemonMetrics {
            http_requests_total: m.counter(
                "crisp_http_requests_total",
                "HTTP requests accepted by the daemon (including event streams).",
            ),
            http_request_seconds: m.histogram(
                "crisp_http_request_seconds",
                "Latency of buffered (non-streaming) HTTP requests.",
                &Histogram::LATENCY_BOUNDS,
            ),
            job_seconds: m.histogram(
                "crisp_job_seconds",
                "Wall-clock duration of one job execution (a sweep run or resume).",
                &[0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0],
            ),
            queue_depth: m.gauge("crisp_queue_depth", "Jobs admitted but not yet finished."),
            queue_cap: m.gauge("crisp_queue_cap", "Admission bound before 429."),
            jobs_admitted: m.gauge("crisp_jobs_admitted", "Jobs with a durable request.json."),
            jobs_finished: m.gauge("crisp_jobs_finished", "Jobs with a final result.json."),
            jobs_admitted_total: m.counter(
                "crisp_jobs_admitted_total",
                "Jobs admitted since daemon start (recovered jobs included).",
            ),
            jobs_rejected_total: m.counter(
                "crisp_jobs_rejected_total",
                "Submissions refused with 429 (queue full).",
            ),
            connections: m.gauge("crisp_connections", "Connections currently being served."),
            draining: m.gauge("crisp_draining", "1 while a graceful drain is in progress."),
            uptime_seconds: m.gauge("crisp_uptime_seconds", "Seconds since daemon start."),
            store_entries: m.gauge("crisp_store_entries", "Cells in the result store."),
            store_bytes: m.gauge("crisp_store_bytes", "Bytes in the result store."),
            store_quarantined: m.gauge(
                "crisp_store_quarantined",
                "Store entries quarantined as corrupt.",
            ),
            store_hits_total: m.counter(
                "crisp_store_hits_total",
                "Cells served warm from the store across finished jobs.",
            ),
            store_misses_total: m.counter(
                "crisp_store_misses_total",
                "Cells simulated fresh (store misses) across finished jobs.",
            ),
            pool_ready: m.gauge("crisp_pool_ready", "1 once every pool worker handshook."),
            workers_alive: m.gauge("crisp_workers_alive", "Live worker processes."),
            workers_busy: m.gauge("crisp_workers_busy", "Workers currently executing a cell."),
            leases_held: m.gauge("crisp_leases_held", "Live leases in the pool's table."),
            lease_steals_total: m.counter(
                "crisp_lease_steals_total",
                "Leases stolen from dead or wedged workers.",
            ),
            poisoned_cells: m.gauge("crisp_poisoned_cells", "Cells quarantined as poisonous."),
            worker_crashes_total: m.counter(
                "crisp_worker_crashes_total",
                "Workers that died mid-cell and were replaced.",
            ),
            prefetch_issued_total: m.labeled_counter(
                "crisp_prefetch_issued_total",
                "Prefetches issued across finished jobs, by mechanism.",
                "prefetcher",
            ),
            prefetch_useful_total: m.labeled_counter(
                "crisp_prefetch_useful_total",
                "Issued prefetches later hit by demand, by mechanism.",
                "prefetcher",
            ),
            prefetch_late_total: m.labeled_counter(
                "crisp_prefetch_late_total",
                "Useful prefetches still in flight at demand time, by mechanism.",
                "prefetcher",
            ),
            registry: m,
        }
    }

    /// Synchronizes every externally-sourced family and renders the
    /// exposition text — the body of `GET /metrics`.
    fn scrape(&self, cfg: &DaemonConfig, state: &State, draining: bool) -> String {
        let (admitted, finished) = state.registry.counts();
        self.queue_depth.set(state.queue_depth() as f64);
        self.queue_cap.set(cfg.queue_cap as f64);
        self.jobs_admitted.set(admitted as f64);
        self.jobs_finished.set(finished as f64);
        sync_counter(
            &self.jobs_admitted_total,
            state.admitted_total.load(Ordering::SeqCst) as u64,
        );
        sync_counter(
            &self.jobs_rejected_total,
            state.rejected_busy.load(Ordering::SeqCst) as u64,
        );
        self.connections
            .set(state.connections.load(Ordering::SeqCst) as f64);
        self.draining.set(f64::from(u8::from(draining)));
        self.uptime_seconds
            .set(state.started.elapsed().as_secs_f64());
        if let Ok(Ok(s)) = Store::open(&state.store_dir).map(|s| s.stats()) {
            self.store_entries.set(s.entries as f64);
            self.store_bytes.set(s.bytes as f64);
            self.store_quarantined.set(s.quarantined as f64);
        }
        sync_counter(
            &self.store_hits_total,
            state.store_hits_total.load(Ordering::SeqCst) as u64,
        );
        sync_counter(
            &self.store_misses_total,
            state.store_misses_total.load(Ordering::SeqCst) as u64,
        );
        if let Some(pool) = &cfg.pool {
            self.pool_ready
                .set(f64::from(u8::from(pool.ready.load(Ordering::SeqCst))));
            self.workers_alive
                .set(pool.workers_alive.load(Ordering::SeqCst) as f64);
            self.workers_busy
                .set(pool.workers_busy.load(Ordering::SeqCst) as f64);
            self.leases_held
                .set(pool.leases_held.load(Ordering::SeqCst) as f64);
            sync_counter(
                &self.lease_steals_total,
                pool.steals.load(Ordering::SeqCst) as u64,
            );
            self.poisoned_cells
                .set(pool.poisoned.load(Ordering::SeqCst) as f64);
            sync_counter(
                &self.worker_crashes_total,
                pool.crashes.load(Ordering::SeqCst) as u64,
            );
        }
        self.registry.render()
    }
}

impl State {
    fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
            + usize::from(self.running.lock().expect("running lock").is_some())
    }

    fn job_state(&self, id: u128) -> Option<JobState> {
        if self.registry.has_result(id) {
            let failed = self
                .registry
                .load_result(id)
                .and_then(|r| r.get("failed").and_then(Value::as_u64))
                .unwrap_or(0);
            return Some(if failed > 0 {
                JobState::Failed
            } else {
                JobState::Done
            });
        }
        if *self.running.lock().expect("running lock") == Some(id) {
            return Some(JobState::Running);
        }
        if self.registry.is_admitted(id) {
            // Queued in memory, or admitted pre-crash and awaiting
            // recovery — either way: it will run.
            return Some(JobState::Queued);
        }
        None
    }
}

/// Runs the daemon until `shutdown` is cancelled (graceful drain) —
/// normally wired to [`crate::signal::watch`].
///
/// # Errors
///
/// Startup failures only (bind, lock, registry). Per-connection and
/// per-job failures are handled in-protocol.
pub fn run_daemon(
    cfg: &DaemonConfig,
    plan: &PlanFn<'_>,
    exec: &ExecFn<'_>,
    shutdown: &CancelToken,
) -> Result<(), String> {
    std::fs::create_dir_all(&cfg.data_dir)
        .map_err(|e| format!("create {}: {e}", cfg.data_dir.display()))?;
    // One daemon per data directory: the registry and queue assume a
    // single writer. Dead holders (SIGKILL) are stolen immediately.
    let lock_path = cfg.data_dir.join("daemon.lock");
    let _lock = crisp_store::acquire(
        &lock_path,
        &LockOptions {
            stale_after: Duration::from_secs(600),
            poll: Duration::from_millis(20),
            wait_timeout: Some(Duration::from_secs(2)),
        },
    )
    .map_err(|e| format!("another daemon owns {}: {e}", cfg.data_dir.display()))?;

    let registry = Registry::open(&cfg.data_dir)?;
    let store_dir = cfg
        .store_dir
        .clone()
        .unwrap_or_else(|| cfg.data_dir.join("store"));
    Store::open(&store_dir).map_err(|e| format!("open store: {e}"))?;

    // Crash recovery: every admitted job without a result re-queues in
    // admission order before the listener opens, so a client polling a
    // pre-crash job id immediately sees it queued.
    let recovered = registry.recover();
    let mut queue = VecDeque::new();
    for rec in &recovered {
        eprintln!(
            "[crisp-serve] recovered incomplete job {} (seq {})",
            key_hex(rec.id),
            rec.seq
        );
        queue.push_back(rec.id);
    }

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let endpoint = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    std::fs::write(cfg.data_dir.join("endpoint"), &endpoint)
        .map_err(|e| format!("write endpoint file: {e}"))?;
    eprintln!(
        "[crisp-serve] listening on {endpoint} (data {})",
        cfg.data_dir.display()
    );

    let state = State {
        registry,
        queue: Mutex::new(queue),
        running: Mutex::new(None),
        admitted_total: AtomicUsize::new(recovered.len()),
        rejected_busy: AtomicUsize::new(0),
        connections: AtomicUsize::new(0),
        worker_parked: AtomicBool::new(false),
        started: Instant::now(),
        store_dir,
        store_hits_total: AtomicUsize::new(0),
        store_misses_total: AtomicUsize::new(0),
        submitted_ns: Mutex::new(HashMap::new()),
        metrics: DaemonMetrics::new(),
    };

    std::thread::scope(|scope| {
        scope.spawn(|| worker_loop(&state, exec, shutdown));
        loop {
            let draining = shutdown.is_cancelled();
            if draining && state.worker_parked.load(Ordering::SeqCst) {
                // Drain complete: admission stopped, the executor has
                // parked (in-flight work finished or checkpointed).
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if state.connections.load(Ordering::SeqCst) >= cfg.max_connections {
                        refuse_connection(stream, cfg);
                        continue;
                    }
                    state.connections.fetch_add(1, Ordering::SeqCst);
                    let state = &state;
                    scope.spawn(move || {
                        handle_connection(stream, cfg, state, plan, shutdown);
                        state.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("[crisp-serve] accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });
    eprintln!("[crisp-serve] drained cleanly");
    Ok(())
}

/// Serial job executor: pops admitted jobs in order and runs their
/// sweeps. One job at a time keeps the simulator's worker pool the only
/// parallelism knob and makes per-job manifests race-free.
fn worker_loop(state: &State, exec: &ExecFn<'_>, shutdown: &CancelToken) {
    loop {
        let next = state.queue.lock().expect("queue lock").pop_front();
        let Some(id) = next else {
            if shutdown.is_cancelled() {
                state.worker_parked.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let Some(record) = state.registry.load(id) else {
            eprintln!("[crisp-serve] job {} vanished from registry", key_hex(id));
            continue;
        };
        *state.running.lock().expect("running lock") = Some(id);
        let manifest = state.registry.manifest_path(id);
        // Span bookkeeping: the root `job` span covers submit→result,
        // `queue` covers submit→dequeue, `execute` covers this run of
        // the executor. The execute span id is salted with the dequeue
        // time so a resumed job gets a distinct second execute span.
        let trace = key_hex(id);
        let spans = state.registry.spans_path(id);
        let submitted = state.submitted_ns.lock().expect("spans lock").remove(&id);
        let dequeued_ns = spanlog::unix_ns();
        let root_span = spanlog::span_id(&trace, "job");
        if let Some(start_ns) = submitted {
            let _ = spanlog::append_span(
                &spans,
                &trace,
                &SpanRec {
                    span: spanlog::span_id(&trace, "queue"),
                    parent: root_span,
                    name: "queue".to_string(),
                    proc: "daemon".to_string(),
                    start_ns,
                    end_ns: dequeued_ns,
                },
            );
        }
        let exec_span = spanlog::span_id(&trace, &format!("execute@{dequeued_ns}"));
        let ctx = ExecCtx {
            resume: manifest.is_file(),
            manifest,
            store: state.store_dir.clone(),
            stop: shutdown.clone(),
            trace: trace.clone(),
            spans: spans.clone(),
            span_parent: exec_span,
        };
        let exec_started = Instant::now();
        let result = exec(&record, &ctx);
        *state.running.lock().expect("running lock") = None;
        state
            .metrics
            .job_seconds
            .observe(exec_started.elapsed().as_secs_f64());
        let finished_ns = spanlog::unix_ns();
        let _ = spanlog::append_span(
            &spans,
            &trace,
            &SpanRec {
                span: exec_span,
                parent: root_span,
                name: "execute".to_string(),
                proc: "daemon".to_string(),
                start_ns: dequeued_ns,
                end_ns: finished_ns,
            },
        );
        let job_done = !matches!(&result, Ok(res) if res.interrupted);
        if job_done {
            let _ = spanlog::append_span(
                &spans,
                &trace,
                &SpanRec {
                    span: root_span,
                    parent: 0,
                    name: "job".to_string(),
                    proc: "daemon".to_string(),
                    start_ns: submitted.unwrap_or(dequeued_ns),
                    end_ns: finished_ns,
                },
            );
        }
        match result {
            Ok(res) if res.interrupted => {
                // Drained mid-job: leave it admitted-without-result so
                // the next start recovers and resumes it.
                eprintln!(
                    "[crisp-serve] job {} interrupted by drain; will resume on restart",
                    key_hex(id)
                );
            }
            Ok(res) => {
                for p in &res.prefetch {
                    state
                        .metrics
                        .prefetch_issued_total
                        .with(&p.name)
                        .add(p.issued);
                    state
                        .metrics
                        .prefetch_useful_total
                        .with(&p.name)
                        .add(p.useful);
                    state.metrics.prefetch_late_total.with(&p.name).add(p.late);
                }
                state
                    .store_hits_total
                    .fetch_add(res.store_hits, Ordering::SeqCst);
                state
                    .store_misses_total
                    .fetch_add(res.store_computed, Ordering::SeqCst);
                let state_name = if res.failed > 0 {
                    JobState::Failed
                } else {
                    JobState::Done
                };
                let doc = Value::Obj(vec![
                    ("id".to_string(), Value::Str(key_hex(id))),
                    ("state".to_string(), Value::Str(state_name.name().into())),
                    ("completed".to_string(), Value::Num(res.completed as f64)),
                    ("failed".to_string(), Value::Num(res.failed as f64)),
                    ("store_hits".to_string(), Value::Num(res.store_hits as f64)),
                    (
                        "store_computed".to_string(),
                        Value::Num(res.store_computed as f64),
                    ),
                    ("rendered".to_string(), Value::Str(res.rendered)),
                ]);
                if let Err(e) = state.registry.write_result(id, &doc) {
                    eprintln!(
                        "[crisp-serve] job {}: result write failed: {e}",
                        key_hex(id)
                    );
                }
            }
            Err(e) => {
                // Executor-level failure (supervisor error): record it
                // as a failed result so clients stop polling.
                let doc = Value::Obj(vec![
                    ("id".to_string(), Value::Str(key_hex(id))),
                    (
                        "state".to_string(),
                        Value::Str(JobState::Failed.name().into()),
                    ),
                    ("completed".to_string(), Value::Num(0.0)),
                    ("failed".to_string(), Value::Num(record.cells.len() as f64)),
                    ("error".to_string(), Value::Str(e.clone())),
                    ("rendered".to_string(), Value::Str(String::new())),
                ]);
                eprintln!("[crisp-serve] job {} failed: {e}", key_hex(id));
                if let Err(we) = state.registry.write_result(id, &doc) {
                    eprintln!(
                        "[crisp-serve] job {}: result write failed: {we}",
                        key_hex(id)
                    );
                }
            }
        }
    }
}

/// Over the connection cap: refuse without reading the request (the
/// cheapest possible rejection; the client's backoff handles it).
fn refuse_connection(mut stream: TcpStream, cfg: &DaemonConfig) {
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        &[format!("Retry-After: {}", cfg.retry_after.as_secs().max(1))],
        &error_body("too many connections", "retry after backoff"),
    );
}

fn handle_connection(
    mut stream: TcpStream,
    cfg: &DaemonConfig,
    state: &State,
    plan: &PlanFn<'_>,
    shutdown: &CancelToken,
) {
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let request = match read_request(&mut stream, &cfg.limits) {
        Ok(req) => req,
        Err(e) => {
            let _ = write_response(
                &mut stream,
                e.status(),
                reason(e.status()),
                &[],
                &error_body("bad request", &e.message()),
            );
            return;
        }
    };
    state.metrics.http_requests_total.inc();
    // The events stream is chunked and long-lived; it cannot go through
    // the buffered (status, headers, body) route below — and its
    // lifetime is the job's, so it is counted but not latency-observed.
    if request.method == "GET" {
        if let Some((id, from)) = parse_events_path(&request.path) {
            stream_events(&mut stream, state, id, from, shutdown);
            return;
        }
    }
    let served = Instant::now();
    let (status, headers, body) = route(&request, cfg, state, plan, shutdown);
    let _ = write_response(&mut stream, status, reason(status), &headers, &body);
    state
        .metrics
        .http_request_seconds
        .observe(served.elapsed().as_secs_f64());
}

/// Matches `GET /jobs/<32-hex>/events[?from=N]` → `(id, line offset)`.
fn parse_events_path(path: &str) -> Option<(u128, usize)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (rest, query) = match rest.split_once('?') {
        Some((r, q)) => (r, Some(q)),
        None => (rest, None),
    };
    let id_hex = rest.strip_suffix("/events")?;
    let id = u128::from_str_radix(id_hex, 16).ok()?;
    let from = query
        .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("from=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    Some((id, from))
}

/// `GET /jobs/<id>/events?from=N`: chunked NDJSON of the job's live
/// event file, starting at line `N` (the reconnect cursor). While the
/// job is unfinished the stream idles on keepalive chunks
/// (`{"event":"keepalive"}` — not part of the file, so clients must not
/// count them toward `from`); it terminates once the job has a result
/// and every event line has been sent.
fn stream_events(
    stream: &mut TcpStream,
    state: &State,
    id: u128,
    from: usize,
    shutdown: &CancelToken,
) {
    if state.job_state(id).is_none() {
        let _ = write_response(
            stream,
            404,
            reason(404),
            &[],
            &error_body("unknown job", &key_hex(id)),
        );
        return;
    }
    if write_chunked_head(stream, 200, reason(200), "application/x-ndjson").is_err() {
        return;
    }
    let path = state.registry.events_path(id);
    let mut offset: u64 = 0; // bytes of complete lines consumed
    let mut skipped = 0usize; // lines dropped to honor ?from
    let mut last_sent = Instant::now();
    loop {
        let mut sent_any = false;
        if let Ok(mut file) = std::fs::File::open(&path) {
            let mut buf = Vec::new();
            if file.seek(SeekFrom::Start(offset)).is_ok()
                && file.read_to_end(&mut buf).is_ok()
                && !buf.is_empty()
            {
                // Consume only complete lines: a torn tail (the writer
                // mid-append) stays for the next poll.
                if let Some(last_nl) = buf.iter().rposition(|&b| b == b'\n') {
                    let complete = &buf[..=last_nl];
                    offset += complete.len() as u64;
                    for line in complete.split(|&b| b == b'\n') {
                        if line.is_empty() {
                            continue;
                        }
                        if skipped < from {
                            skipped += 1;
                            continue;
                        }
                        let mut chunk = line.to_vec();
                        chunk.push(b'\n');
                        if write_chunk(stream, &chunk).is_err() {
                            return; // client gone
                        }
                        sent_any = true;
                    }
                }
            }
        }
        if sent_any {
            last_sent = Instant::now();
            continue;
        }
        // Quiescent: finished jobs end the stream, live ones keepalive.
        if state.registry.has_result(id) || shutdown.is_cancelled() {
            break;
        }
        if last_sent.elapsed() >= Duration::from_secs(2) {
            if write_chunk(stream, b"{\"event\":\"keepalive\"}\n").is_err() {
                return;
            }
            last_sent = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = write_chunk_end(stream);
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Dispatches one request to `(status, extra headers, body)`.
fn route(
    req: &Request,
    cfg: &DaemonConfig,
    state: &State,
    plan: &PlanFn<'_>,
    shutdown: &CancelToken,
) -> (u16, Vec<String>, String) {
    let draining = shutdown.is_cancelled();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            vec![],
            Value::Obj(vec![("ok".to_string(), Value::Bool(true))]).encode(),
        ),
        ("GET", "/readyz") => {
            let full = state.queue_depth() >= cfg.queue_cap;
            let warming = cfg
                .pool
                .as_ref()
                .is_some_and(|p| !p.ready.load(Ordering::SeqCst));
            if draining || full || warming {
                let why = if draining {
                    "draining"
                } else if full {
                    "queue full"
                } else {
                    "pool warming"
                };
                (
                    503,
                    vec![retry_after_header(cfg)],
                    error_body("not ready", why),
                )
            } else {
                (
                    200,
                    vec![],
                    Value::Obj(vec![("ready".to_string(), Value::Bool(true))]).encode(),
                )
            }
        }
        ("GET", "/stats") => (200, vec![], stats_body(cfg, state, draining)),
        ("GET", "/metrics") => (
            200,
            vec!["Content-Type: text/plain; version=0.0.4".to_string()],
            state.metrics.scrape(cfg, state, draining),
        ),
        ("POST", "/jobs") => submit(req, cfg, state, plan, draining),
        ("GET", path) => job_routes(path, state),
        _ => (405, vec![], error_body("method not allowed", &req.method)),
    }
}

fn retry_after_header(cfg: &DaemonConfig) -> String {
    format!("Retry-After: {}", cfg.retry_after.as_secs().max(1))
}

fn stats_body(cfg: &DaemonConfig, state: &State, draining: bool) -> String {
    let (admitted, finished) = state.registry.counts();
    let mut pairs = vec![
        (
            "queue_depth".to_string(),
            Value::Num(state.queue_depth() as f64),
        ),
        ("queue_cap".to_string(), Value::Num(cfg.queue_cap as f64)),
        ("jobs_admitted".to_string(), Value::Num(admitted as f64)),
        ("jobs_finished".to_string(), Value::Num(finished as f64)),
        (
            "admitted_total".to_string(),
            Value::Num(state.admitted_total.load(Ordering::SeqCst) as f64),
        ),
        (
            "rejected_busy".to_string(),
            Value::Num(state.rejected_busy.load(Ordering::SeqCst) as f64),
        ),
        (
            "connections".to_string(),
            Value::Num(state.connections.load(Ordering::SeqCst) as f64),
        ),
        ("draining".to_string(), Value::Bool(draining)),
        (
            "uptime_ms".to_string(),
            Value::Num(state.started.elapsed().as_millis() as f64),
        ),
        (
            "uptime_seconds".to_string(),
            Value::Num(state.started.elapsed().as_secs() as f64),
        ),
        (
            "store_hits_total".to_string(),
            Value::Num(state.store_hits_total.load(Ordering::SeqCst) as f64),
        ),
        (
            "store_misses_total".to_string(),
            Value::Num(state.store_misses_total.load(Ordering::SeqCst) as f64),
        ),
    ];
    if let Some(pool) = &cfg.pool {
        pairs.push((
            "pool_ready".to_string(),
            Value::Bool(pool.ready.load(Ordering::SeqCst)),
        ));
        pairs.push((
            "workers_alive".to_string(),
            Value::Num(pool.workers_alive.load(Ordering::SeqCst) as f64),
        ));
        pairs.push((
            "workers_busy".to_string(),
            Value::Num(pool.workers_busy.load(Ordering::SeqCst) as f64),
        ));
        pairs.push((
            "leases_held".to_string(),
            Value::Num(pool.leases_held.load(Ordering::SeqCst) as f64),
        ));
        pairs.push((
            "lease_steals".to_string(),
            Value::Num(pool.steals.load(Ordering::SeqCst) as f64),
        ));
        pairs.push((
            "poisoned_cells".to_string(),
            Value::Num(pool.poisoned.load(Ordering::SeqCst) as f64),
        ));
        pairs.push((
            "workers_pids".to_string(),
            Value::Arr(
                pool.pids()
                    .into_iter()
                    .map(|p| Value::Num(f64::from(p)))
                    .collect(),
            ),
        ));
    }
    if let Ok(store) = Store::open(&state.store_dir) {
        if let Ok(s) = store.stats() {
            pairs.push(("store_entries".to_string(), Value::Num(s.entries as f64)));
            pairs.push(("store_bytes".to_string(), Value::Num(s.bytes as f64)));
            pairs.push(("store_hits".to_string(), Value::Num(s.hits as f64)));
            pairs.push((
                "store_quarantined".to_string(),
                Value::Num(s.quarantined as f64),
            ));
        }
    }
    Value::Obj(pairs).encode()
}

/// `POST /jobs`: validate → coalesce → admit (bounded) → 202.
fn submit(
    req: &Request,
    cfg: &DaemonConfig,
    state: &State,
    plan: &PlanFn<'_>,
    draining: bool,
) -> (u16, Vec<String>, String) {
    if draining {
        return (
            503,
            vec![retry_after_header(cfg)],
            error_body(
                "draining",
                "daemon is shutting down; resubmit after restart",
            ),
        );
    }
    let submission = match SubmitRequest::parse(&req.body, cfg.limits.max_body_bytes) {
        Ok(s) => s,
        Err(e) => return (400, vec![], error_body("invalid submission", &e)),
    };
    let planned = match plan(&submission) {
        Ok(p) => p,
        Err(e) => return (400, vec![], error_body("invalid submission", &e)),
    };
    if planned.cells.is_empty() {
        return (
            400,
            vec![],
            error_body("invalid submission", "plan contains no cells"),
        );
    }
    let id = job_id(&planned.spec, &planned.cells);

    // Idempotent coalescing: an already-known id maps onto the existing
    // job in whatever state it is, with no second execution.
    if let Some(existing) = state.job_state(id) {
        let status = match existing {
            JobState::Done | JobState::Failed => 200,
            _ => 202,
        };
        return (
            status,
            vec![],
            submit_body(id, existing, &planned, state, true),
        );
    }

    // Admission control: bounded queue, refuse before any disk write.
    {
        let queue = state.queue.lock().expect("queue lock");
        let depth =
            queue.len() + usize::from(state.running.lock().expect("running lock").is_some());
        if depth >= cfg.queue_cap {
            state.rejected_busy.fetch_add(1, Ordering::SeqCst);
            return (
                429,
                vec![retry_after_header(cfg)],
                error_body(
                    "queue full",
                    &format!("{depth} jobs pending (cap {}); retry later", cfg.queue_cap),
                ),
            );
        }
    }
    let record = JobRecord {
        id,
        seq: state.registry.next_seq(),
        request: planned.request.clone(),
        spec: planned.spec.clone(),
        cells: planned.cells.clone(),
    };
    // Durability before acknowledgement: persist, then enqueue, then 202.
    if let Err(e) = state.registry.persist(&record) {
        return (500, vec![], error_body("admission failed", &e));
    }
    state
        .submitted_ns
        .lock()
        .expect("submitted lock")
        .insert(id, spanlog::unix_ns());
    state.queue.lock().expect("queue lock").push_back(id);
    state.admitted_total.fetch_add(1, Ordering::SeqCst);
    (
        202,
        vec![],
        submit_body(id, JobState::Queued, &planned, state, false),
    )
}

fn submit_body(
    id: u128,
    job_state: JobState,
    planned: &JobPlan,
    state: &State,
    coalesced: bool,
) -> String {
    // Warm-cell count: a cheap existence probe per cell (lookup-grade
    // verification happens when the sweep actually serves them).
    let warm = Store::open(&state.store_dir)
        .map(|store| planned.cells.iter().filter(|&&k| store.contains(k)).count())
        .unwrap_or(0);
    Value::Obj(vec![
        ("id".to_string(), Value::Str(key_hex(id))),
        ("state".to_string(), Value::Str(job_state.name().into())),
        ("cells".to_string(), Value::Num(planned.cells.len() as f64)),
        ("warm_cells".to_string(), Value::Num(warm as f64)),
        ("coalesced".to_string(), Value::Bool(coalesced)),
    ])
    .encode()
}

/// `GET /jobs/<id>` and `GET /jobs/<id>/result`.
fn job_routes(path: &str, state: &State) -> (u16, Vec<String>, String) {
    let Some(rest) = path.strip_prefix("/jobs/") else {
        return (404, vec![], error_body("not found", path));
    };
    let (id_hex, want_result) = match rest.strip_suffix("/result") {
        Some(prefix) => (prefix, true),
        None => (rest, false),
    };
    let Ok(id) = u128::from_str_radix(id_hex, 16) else {
        return (400, vec![], error_body("bad job id", id_hex));
    };
    let Some(job_state) = state.job_state(id) else {
        return (404, vec![], error_body("unknown job", id_hex));
    };
    if want_result {
        return match job_state {
            JobState::Done | JobState::Failed => {
                let doc = state
                    .registry
                    .load_result(id)
                    .unwrap_or_else(|| Value::Obj(vec![]));
                (200, vec![], doc.encode())
            }
            _ => (
                202,
                vec![],
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(key_hex(id))),
                    ("state".to_string(), Value::Str(job_state.name().into())),
                ])
                .encode(),
            ),
        };
    }
    // Status: include manifest-derived progress while running.
    let mut pairs = vec![
        ("id".to_string(), Value::Str(key_hex(id))),
        ("state".to_string(), Value::Str(job_state.name().into())),
    ];
    if let Some(record) = state.registry.load(id) {
        pairs.push(("cells".to_string(), Value::Num(record.cells.len() as f64)));
    }
    if job_state == JobState::Running {
        if let Ok(m) = load_manifest(&state.registry.manifest_path(id)) {
            pairs.push((
                "cells_completed".to_string(),
                Value::Num(m.completed.len() as f64),
            ));
        }
    }
    (200, vec![], Value::Obj(pairs).encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicU32;

    /// A toy planner: each target is one cell keyed by its name.
    fn toy_plan(req: &SubmitRequest) -> Result<JobPlan, String> {
        if req.scale != "tiny" {
            return Err(format!("unknown scale `{}`", req.scale));
        }
        if req.targets.iter().any(|t| t == "bogus") {
            return Err("unknown target `bogus`".to_string());
        }
        let mut targets = req.targets.clone();
        targets.sort();
        targets.dedup();
        Ok(JobPlan {
            spec: format!("toy targets=[{}]", targets.join(",")),
            cells: targets.iter().map(|t| fnv1a128(t.as_bytes())).collect(),
            request: SubmitRequest {
                targets,
                workloads: None,
                scale: req.scale.clone(),
                prefetcher: None,
            },
        })
    }

    struct Daemon {
        addr: String,
        shutdown: CancelToken,
        handle: Option<std::thread::JoinHandle<Result<(), String>>>,
    }

    impl Daemon {
        fn spawn(dir: &std::path::Path, queue_cap: usize, exec_delay: Duration) -> Daemon {
            Daemon::spawn_with_drain_lag(dir, queue_cap, exec_delay, Duration::ZERO)
        }

        /// Spawns a daemon with a caller-supplied executor closure, for
        /// tests that need job side effects (event files, spans).
        fn spawn_custom<F>(dir: &std::path::Path, queue_cap: usize, exec: F) -> Daemon
        where
            F: Fn(&JobRecord, &ExecCtx) -> Result<ExecResult, String> + Send + Sync + 'static,
        {
            let endpoint_file = dir.join("endpoint");
            std::fs::remove_file(&endpoint_file).ok();
            let shutdown = CancelToken::new();
            let cfg = DaemonConfig {
                data_dir: dir.to_path_buf(),
                queue_cap,
                ..DaemonConfig::default()
            };
            let token = shutdown.clone();
            let handle = std::thread::spawn(move || run_daemon(&cfg, &toy_plan, &exec, &token));
            Daemon {
                addr: wait_endpoint(&endpoint_file),
                shutdown,
                handle: Some(handle),
            }
        }

        /// `drain_lag` models checkpoint-flush time: how long the toy
        /// executor keeps running after noticing the stop token. Tests
        /// that probe draining behaviour need a non-zero window.
        fn spawn_with_drain_lag(
            dir: &std::path::Path,
            queue_cap: usize,
            exec_delay: Duration,
            drain_lag: Duration,
        ) -> Daemon {
            // A restart over the same data dir would otherwise race
            // against the stale endpoint file of the previous daemon.
            let endpoint_file = dir.join("endpoint");
            std::fs::remove_file(&endpoint_file).ok();
            let shutdown = CancelToken::new();
            let cfg = DaemonConfig {
                data_dir: dir.to_path_buf(),
                queue_cap,
                ..DaemonConfig::default()
            };
            let token = shutdown.clone();
            let handle = std::thread::spawn(move || {
                let exec_calls = AtomicU32::new(0);
                run_daemon(
                    &cfg,
                    &toy_plan,
                    &move |record: &JobRecord, ctx: &ExecCtx| {
                        exec_calls.fetch_add(1, Ordering::SeqCst);
                        let until = Instant::now() + exec_delay;
                        while Instant::now() < until {
                            if ctx.stop.is_cancelled() {
                                std::thread::sleep(drain_lag);
                                return Ok(ExecResult {
                                    interrupted: true,
                                    ..ExecResult::default()
                                });
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Ok(ExecResult {
                            rendered: format!("table for {}", key_hex(record.id)),
                            completed: record.cells.len(),
                            ..ExecResult::default()
                        })
                    },
                    &token,
                )
            });
            Daemon {
                addr: wait_endpoint(&endpoint_file),
                shutdown,
                handle: Some(handle),
            }
        }

        fn request(&self, raw: &str) -> (u16, String) {
            let mut stream = TcpStream::connect(&self.addr).expect("connect");
            stream.write_all(raw.as_bytes()).unwrap();
            let mut response = Vec::new();
            stream.read_to_end(&mut response).unwrap();
            let (status, _retry, body) = crate::http::read_response(&mut &response[..]).unwrap();
            (status, String::from_utf8_lossy(&body).into_owned())
        }

        fn post_jobs(&self, body: &str) -> (u16, String) {
            self.request(&format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ))
        }

        fn get(&self, path: &str) -> (u16, String) {
            self.request(&format!("GET {path} HTTP/1.1\r\n\r\n"))
        }

        fn drain(mut self) {
            self.shutdown.cancel();
            let result = self.handle.take().unwrap().join().expect("daemon thread");
            assert_eq!(result, Ok(()), "drain must exit cleanly");
        }
    }

    impl Drop for Daemon {
        fn drop(&mut self) {
            self.shutdown.cancel();
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn wait_endpoint(endpoint_file: &std::path::Path) -> String {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(s) = std::fs::read_to_string(endpoint_file) {
                if !s.is_empty() {
                    return s;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never published its endpoint"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crisp-serve-daemon-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn wait_for_state(d: &Daemon, id: &str, want: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = d.get(&format!("/jobs/{id}"));
            assert_eq!(status, 200, "{body}");
            if body.contains(&format!("\"state\":\"{want}\"")) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} never reached {want}: {body}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn extract_id(body: &str) -> String {
        let v = crisp_harness::json::parse(body).unwrap();
        v.get("id").unwrap().as_str().unwrap().to_string()
    }

    #[test]
    fn submit_poll_result_happy_path() {
        let dir = temp_dir("happy");
        let d = Daemon::spawn(&dir, 4, Duration::ZERO);
        let (status, body) = d.get("/healthz");
        assert_eq!((status, body.contains("true")), (200, true), "{body}");
        assert_eq!(d.get("/readyz").0, 200);

        let (status, body) = d.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"cells\":1"), "{body}");
        let id = extract_id(&body);
        wait_for_state(&d, &id, "done");

        let (status, body) = d.get(&format!("/jobs/{id}/result"));
        assert_eq!(status, 200);
        assert!(body.contains("table for"), "{body}");

        let (status, body) = d.get("/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs_finished\":1"), "{body}");
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_and_unknown_requests_get_4xx() {
        let dir = temp_dir("errors");
        let d = Daemon::spawn(&dir, 4, Duration::ZERO);
        assert_eq!(d.post_jobs("not json").0, 400);
        assert_eq!(d.post_jobs("{\"targets\":[],\"scale\":\"tiny\"}").0, 400);
        assert_eq!(
            d.post_jobs("{\"targets\":[\"bogus\"],\"scale\":\"tiny\"}")
                .0,
            400
        );
        assert_eq!(
            d.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"galactic\"}")
                .0,
            400
        );
        assert_eq!(d.get("/jobs/zzzz").0, 400);
        assert_eq!(d.get(&format!("/jobs/{}", key_hex(7))).0, 404);
        assert_eq!(d.get("/nope").0, 404);
        assert_eq!(d.request("DELETE /jobs HTTP/1.1\r\n\r\n").0, 405);
        assert_eq!(d.request("garbage\r\n\r\n").0, 400);
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_submissions_coalesce_onto_one_job() {
        let dir = temp_dir("idempotent");
        let d = Daemon::spawn(&dir, 4, Duration::from_millis(100));
        let (s1, b1) = d.post_jobs("{\"targets\":[\"fig1\",\"fig2\"],\"scale\":\"tiny\"}");
        assert_eq!(s1, 202, "{b1}");
        // Same work, different order: same id, no second execution.
        let (s2, b2) = d.post_jobs("{\"targets\":[\"fig2\",\"fig1\"],\"scale\":\"tiny\"}");
        assert!(s2 == 200 || s2 == 202, "{s2} {b2}");
        assert_eq!(extract_id(&b1), extract_id(&b2));
        assert!(b2.contains("\"coalesced\":true"), "{b2}");
        let id = extract_id(&b1);
        wait_for_state(&d, &id, "done");
        // Resubmitting a finished job returns 200 immediately.
        let (s3, b3) = d.post_jobs("{\"targets\":[\"fig1\",\"fig2\"],\"scale\":\"tiny\"}");
        assert_eq!(s3, 200, "{b3}");
        let (_, stats) = d.get("/stats");
        assert!(stats.contains("\"admitted_total\":1"), "{stats}");
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_queue_returns_429_with_retry_after_and_loses_nothing() {
        let dir = temp_dir("backpressure");
        let d = Daemon::spawn(&dir, 2, Duration::from_millis(120));
        let (s1, b1) = d.post_jobs("{\"targets\":[\"a\"],\"scale\":\"tiny\"}");
        let (s2, b2) = d.post_jobs("{\"targets\":[\"b\"],\"scale\":\"tiny\"}");
        assert_eq!((s1, s2), (202, 202), "{b1} {b2}");
        // Queue (cap 2) holds a running + a queued job: the third unique
        // submission must be refused with backpressure.
        let mut stream = TcpStream::connect(&d.addr).unwrap();
        let body = "{\"targets\":[\"c\"],\"scale\":\"tiny\"}";
        write!(
            stream,
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let (status, retry_after, resp) = crate::http::read_response(&mut &raw[..]).unwrap();
        assert_eq!(status, 429, "{}", String::from_utf8_lossy(&resp));
        assert!(retry_after.unwrap_or(0) >= 1, "429 must carry Retry-After");
        assert_eq!(d.get("/readyz").0, 503, "full queue is not ready");

        // The refused job was never admitted; the two admitted jobs both
        // finish (nothing lost, nothing duplicated).
        let (ida, idb) = (extract_id(&b1), extract_id(&b2));
        wait_for_state(&d, &ida, "done");
        wait_for_state(&d, &idb, "done");
        let (_, stats) = d.get("/stats");
        assert!(stats.contains("\"rejected_busy\":1"), "{stats}");
        assert!(stats.contains("\"jobs_finished\":2"), "{stats}");
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_interrupts_the_running_job_and_restart_recovers_it() {
        let dir = temp_dir("drain-recover");
        let d = Daemon::spawn_with_drain_lag(
            &dir,
            4,
            Duration::from_millis(400),
            Duration::from_millis(300),
        );
        let (status, body) = d.post_jobs("{\"targets\":[\"slow\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        let id = extract_id(&body);
        wait_for_state(&d, &id, "running");
        // Drain while the job is mid-execution: POSTs are refused, the
        // executor aborts cooperatively, and the daemon exits 0.
        d.shutdown.cancel();
        std::thread::sleep(Duration::from_millis(10));
        let (status, _) = d.post_jobs("{\"targets\":[\"other\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 503, "draining daemon must refuse admissions");
        d.drain();

        // Restart over the same data dir: the interrupted job recovers,
        // resumes, and finishes under the same id.
        let d2 = Daemon::spawn(&dir, 4, Duration::ZERO);
        wait_for_state(&d2, &id, "done");
        d2.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Extracts one sample value from exposition text by metric name.
    fn metric_value(text: &str, name: &str) -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no sample for {name} in:\n{text}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn metrics_agree_with_stats_and_render_valid_exposition() {
        let dir = temp_dir("metrics");
        let d = Daemon::spawn_custom(&dir, 4, |record: &JobRecord, _ctx: &ExecCtx| {
            Ok(ExecResult {
                rendered: "t".into(),
                completed: record.cells.len(),
                store_hits: 2,
                store_computed: 3,
                prefetch: vec![
                    PrefetchTotals {
                        name: "spp".into(),
                        issued: 100,
                        useful: 40,
                        late: 5,
                    },
                    PrefetchTotals {
                        name: "ghbw".into(),
                        issued: 10,
                        useful: 1,
                        late: 0,
                    },
                ],
                ..ExecResult::default()
            })
        });
        let (status, body) = d.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        let id = extract_id(&body);
        wait_for_state(&d, &id, "done");

        let (status, text) = d.get("/metrics");
        assert_eq!(status, 200);
        for line in text.lines() {
            crate::metrics::check_exposition_line(line).unwrap_or_else(|e| panic!("{e}"));
        }
        let (_, stats) = d.get("/stats");
        let stats = crisp_harness::json::parse(&stats).unwrap();
        let stat = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap();
        // The exported families and /stats must tell the same story.
        assert_eq!(metric_value(&text, "crisp_queue_cap"), stat("queue_cap"));
        assert_eq!(
            metric_value(&text, "crisp_jobs_admitted_total"),
            stat("admitted_total")
        );
        assert_eq!(
            metric_value(&text, "crisp_jobs_finished"),
            stat("jobs_finished")
        );
        assert_eq!(
            metric_value(&text, "crisp_store_hits_total"),
            stat("store_hits_total")
        );
        assert_eq!(
            metric_value(&text, "crisp_store_misses_total"),
            stat("store_misses_total")
        );
        assert_eq!(metric_value(&text, "crisp_store_hits_total"), 2.0);
        assert_eq!(metric_value(&text, "crisp_store_misses_total"), 3.0);
        assert!(
            stats.get("uptime_seconds").is_some(),
            "/stats uptime_seconds"
        );
        // Per-prefetcher families carry the executor's totals.
        assert!(
            text.contains("crisp_prefetch_issued_total{prefetcher=\"spp\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("crisp_prefetch_useful_total{prefetcher=\"spp\"} 40"),
            "{text}"
        );
        assert!(
            text.contains("crisp_prefetch_late_total{prefetcher=\"spp\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("crisp_prefetch_issued_total{prefetcher=\"ghbw\"} 10"),
            "{text}"
        );
        assert!(metric_value(&text, "crisp_http_requests_total") >= 1.0);
        assert!(metric_value(&text, "crisp_job_seconds_count") >= 1.0);
        assert!(metric_value(&text, "crisp_uptime_seconds") >= 0.0);
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spans_cover_submit_to_result_across_layers() {
        let dir = temp_dir("spans");
        let d = Daemon::spawn_custom(&dir, 4, |record: &JobRecord, ctx: &ExecCtx| {
            // Stand-in for the supervisor layer: hang a cell span off
            // the daemon's execute span.
            let start = spanlog::unix_ns();
            let rec = SpanRec {
                span: spanlog::span_id(&ctx.trace, "cell toy#1"),
                parent: ctx.span_parent,
                name: "cell toy#1".to_string(),
                proc: "supervisor".to_string(),
                start_ns: start,
                end_ns: start + 1000,
            };
            spanlog::append_span(&ctx.spans, &ctx.trace, &rec).map_err(|e| e.to_string())?;
            Ok(ExecResult {
                rendered: "t".into(),
                completed: record.cells.len(),
                ..ExecResult::default()
            })
        });
        let (status, body) = d.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        let id = extract_id(&body);
        wait_for_state(&d, &id, "done");
        d.drain();

        let registry = Registry::open(&dir).unwrap();
        let text =
            std::fs::read_to_string(registry.spans_path(u128::from_str_radix(&id, 16).unwrap()))
                .expect("spans.jsonl written");
        let spans = crisp_harness::load_spans(&text);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for want in ["job", "queue", "execute", "cell toy#1"] {
            assert!(names.contains(&want), "missing span `{want}`: {names:?}");
        }
        let root = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(root.parent, 0);
        let queue = spans.iter().find(|s| s.name == "queue").unwrap();
        let exec = spans.iter().find(|s| s.name == "execute").unwrap();
        let cell = spans.iter().find(|s| s.name == "cell toy#1").unwrap();
        assert_eq!(queue.parent, root.span);
        assert_eq!(exec.parent, root.span);
        assert_eq!(cell.parent, exec.span);
        // The root covers submit → result.
        assert!(root.start_ns <= queue.start_ns && root.end_ns >= exec.end_ns);
        let rendered = crisp_obs::render_spans(&spans);
        assert!(rendered.contains("job"), "{rendered}");
        assert!(rendered.contains("cell toy#1"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_stream_edge_cases_from_cursor_and_reconnect() {
        use crate::client::{Client, ClientConfig};
        let dir = temp_dir("events-edge");
        let d = Daemon::spawn_custom(&dir, 4, |record: &JobRecord, ctx: &ExecCtx| {
            let events = ctx.manifest.with_file_name("events.jsonl");
            let lines: String = (0..3)
                .map(|i| format!("{{\"event\":\"cell-done\",\"seq\":{i}}}\n"))
                .collect();
            std::fs::write(events, lines).map_err(|e| e.to_string())?;
            Ok(ExecResult {
                rendered: "t".into(),
                completed: record.cells.len(),
                ..ExecResult::default()
            })
        });
        let (status, body) = d.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        let id = extract_id(&body);
        wait_for_state(&d, &id, "done");
        let client = Client::new(ClientConfig {
            addr: d.addr.clone(),
            timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        });

        // A cursor beyond the end of a finished job's stream delivers
        // nothing and still terminates cleanly.
        let (delivered, ended) = client.follow(&id, 999, &mut |_| {}).unwrap();
        assert_eq!((delivered, ended), (0, true), "?from beyond end");

        // A mid-stream disconnect (client drops after the response
        // head) loses nothing: reconnecting with the line cursor
        // resumes exactly after the last consumed line.
        {
            let mut stream = TcpStream::connect(&d.addr).unwrap();
            write!(stream, "GET /jobs/{id}/events HTTP/1.1\r\n\r\n").unwrap();
            let mut partial = [0u8; 64];
            let _ = stream.read(&mut partial); // head + maybe a torn line
            drop(stream); // disconnect mid-stream
        }
        let mut seqs = Vec::new();
        let (delivered, ended) = client
            .follow(&id, 1, &mut |e| {
                seqs.push(e.get("seq").and_then(Value::as_u64).unwrap());
            })
            .unwrap();
        assert_eq!((delivered, ended), (2, true));
        assert_eq!(seqs, vec![1, 2], "no duplicates, no gaps after resume");
        d.drain();

        // An empty (created but never written) event file yields an
        // empty, cleanly-terminated stream.
        let dir2 = temp_dir("events-empty");
        let d2 = Daemon::spawn_custom(&dir2, 4, |record: &JobRecord, ctx: &ExecCtx| {
            std::fs::write(ctx.manifest.with_file_name("events.jsonl"), b"")
                .map_err(|e| e.to_string())?;
            Ok(ExecResult {
                rendered: "t".into(),
                completed: record.cells.len(),
                ..ExecResult::default()
            })
        });
        let (status, body) = d2.post_jobs("{\"targets\":[\"fig1\"],\"scale\":\"tiny\"}");
        assert_eq!(status, 202, "{body}");
        let id2 = extract_id(&body);
        wait_for_state(&d2, &id2, "done");
        let client2 = Client::new(ClientConfig {
            addr: d2.addr.clone(),
            timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        });
        let (delivered, ended) = client2.follow(&id2, 0, &mut |_| {}).unwrap();
        assert_eq!((delivered, ended), (0, true), "empty event file");
        d2.drain();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn two_daemons_cannot_share_a_data_dir() {
        let dir = temp_dir("exclusive");
        let d = Daemon::spawn(&dir, 4, Duration::ZERO);
        let cfg = DaemonConfig {
            data_dir: dir.clone(),
            ..DaemonConfig::default()
        };
        let err = run_daemon(
            &cfg,
            &toy_plan,
            &|_: &JobRecord, _: &ExecCtx| Ok(ExecResult::default()),
            &CancelToken::new(),
        )
        .unwrap_err();
        assert!(err.contains("another daemon"), "{err}");
        d.drain();
        std::fs::remove_dir_all(&dir).ok();
    }
}
