//! Hand-rolled Prometheus metrics: a counter/gauge/histogram registry
//! rendering text exposition format 0.0.4, with no dependencies.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones; the registry renders every registered family in registration
//! order, so `/metrics` output is deterministic (golden-testable).
//!
//! **Increment cost over strict precision.** `Counter::inc` is a
//! relaxed load + store rather than a `fetch_add`: on x86 a locked
//! `xadd` serializes at ~5–10 ns, blowing the workspace-wide ≤0.5
//! ns/call observability budget that the `obs-overhead` benchmark
//! gates. The plain load/store pair costs well under a nanosecond and
//! overlaps with surrounding work; the trade is that two racing
//! increments may lose a tick. Monitoring counters are trend
//! instruments, not ledgers — best-effort monotonicity is the right
//! contract, and the daemon's authoritative numbers stay in `/stats`'
//! sequentially-consistent atomics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically-increasing (best-effort, see module docs) counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed load + store: sub-ns, may lose racing ticks).
    #[inline]
    pub fn add(&self, n: u64) {
        let v = self.0.load(Ordering::Relaxed);
        self.0.store(v.wrapping_add(n), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A counter family with one fixed label key and lazily-created
/// children — the shape behind `crisp_prefetch_issued_total{prefetcher=…}`.
///
/// Children are keyed by label *value* in a `BTreeMap`, so rendering is
/// deterministic regardless of first-touch order.
#[derive(Clone, Debug, Default)]
pub struct LabeledCounter {
    children: Arc<Mutex<BTreeMap<String, Counter>>>,
}

impl LabeledCounter {
    /// The child counter for `value`, created on first use. Label
    /// values are escaped at render time, so any string is safe here.
    pub fn with(&self, value: &str) -> Counter {
        self.children
            .lock()
            .expect("labeled counter lock")
            .entry(value.to_string())
            .or_default()
            .clone()
    }

    /// Snapshot of `(label value, count)` pairs in render order.
    pub fn samples(&self) -> Vec<(String, u64)> {
        self.children
            .lock()
            .expect("labeled counter lock")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }
}

/// A gauge: a value that can go up and down. Set at scrape time or from
/// event handlers.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A cumulative histogram with fixed upper bounds.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    /// One count per bound, plus the +Inf bucket at the end.
    buckets: Arc<Vec<AtomicU64>>,
    /// Sum of observations, stored as f64 bits.
    sum: Arc<AtomicU64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let mut b = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).expect("finite bounds"));
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: Arc::new(b),
            buckets: Arc::new(buckets),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Default wall-clock buckets (seconds): 1 ms … 60 s.
    pub const LATENCY_BOUNDS: [f64; 10] =
        [0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1.0, 5.0, 15.0, 60.0];

    /// Records one observation (same lossy-but-cheap contract as
    /// [`Counter::add`]).
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let cell = &self.buckets[idx];
        cell.store(
            cell.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
        let s = f64::from_bits(self.sum.load(Ordering::Relaxed));
        self.sum.store((s + v).to_bits(), Ordering::Relaxed);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

enum Family {
    Counter(Counter),
    /// One label key, many children ([`LabeledCounter`]).
    LabeledCounter(String, LabeledCounter),
    Gauge(Gauge),
    /// Computed at scrape time (queue depths, pool gauges, store sizes).
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    family: Family,
}

/// The metric registry behind `GET /metrics`. Cloning shares the
/// underlying registry.
#[derive(Clone, Default)]
pub struct Metrics {
    families: Arc<Mutex<Vec<Registered>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn push(&self, name: &str, help: &str, family: Family) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut families = self.families.lock().expect("metrics lock");
        assert!(
            !families.iter().any(|r| r.name == name),
            "duplicate metric `{name}`"
        );
        families.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            family,
        });
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::default();
        self.push(name, help, Family::Counter(c.clone()));
        c
    }

    /// Registers a single-label counter family and returns its handle.
    /// `label` is the label *key* shared by every child sample.
    pub fn labeled_counter(&self, name: &str, help: &str, label: &str) -> LabeledCounter {
        assert!(valid_name(label), "invalid label name `{label}`");
        let c = LabeledCounter::default();
        self.push(
            name,
            help,
            Family::LabeledCounter(label.to_string(), c.clone()),
        );
        c
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::default();
        self.push(name, help, Family::Gauge(g.clone()));
        g
    }

    /// Registers a gauge computed at scrape time.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.push(name, help, Family::GaugeFn(Box::new(f)));
    }

    /// Registers a histogram over `bounds` (a +Inf bucket is implicit)
    /// and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        let h = Histogram::new(bounds);
        self.push(name, help, Family::Histogram(h.clone()));
        h
    }

    /// Renders every family in text exposition format 0.0.4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.families.lock().expect("metrics lock").iter() {
            out.push_str(&format!("# HELP {} {}\n", r.name, r.help));
            match &r.family {
                Family::Counter(c) => {
                    out.push_str(&format!("# TYPE {} counter\n", r.name));
                    out.push_str(&format!("{} {}\n", r.name, c.get()));
                }
                Family::LabeledCounter(label, c) => {
                    out.push_str(&format!("# TYPE {} counter\n", r.name));
                    for (value, count) in c.samples() {
                        out.push_str(&format!(
                            "{}{{{label}=\"{}\"}} {count}\n",
                            r.name,
                            escape_label(&value)
                        ));
                    }
                }
                Family::Gauge(g) => {
                    out.push_str(&format!("# TYPE {} gauge\n", r.name));
                    out.push_str(&format!("{} {}\n", r.name, fmt_f64(g.get())));
                }
                Family::GaugeFn(f) => {
                    out.push_str(&format!("# TYPE {} gauge\n", r.name));
                    out.push_str(&format!("{} {}\n", r.name, fmt_f64(f())));
                }
                Family::Histogram(h) => {
                    out.push_str(&format!("# TYPE {} histogram\n", r.name));
                    let mut cum = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cum += h.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {cum}\n",
                            r.name,
                            fmt_f64(*bound)
                        ));
                    }
                    cum += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {cum}\n", r.name));
                    let sum = f64::from_bits(h.sum.load(Ordering::Relaxed));
                    out.push_str(&format!("{}_sum {}\n", r.name, fmt_f64(sum)));
                    out.push_str(&format!("{}_count {cum}\n", r.name));
                }
            }
        }
        out
    }
}

/// Label-value escaping per exposition format 0.0.4: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus-friendly float rendering: integers without a trailing
/// `.0`, everything else via the shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validates one line of text exposition format 0.0.4 — shared by the
/// golden test and the CI scrape check (via `crisp obs`). Accepts
/// `# HELP`/`# TYPE` comments, blank lines, and `name[{labels}] value`
/// samples.
pub fn check_exposition_line(line: &str) -> Result<(), String> {
    if line.is_empty() || line.starts_with("# HELP ") {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("# TYPE ") {
        let mut it = rest.split_whitespace();
        let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
        if !valid_name(name) {
            return Err(format!("bad metric name in TYPE line: `{line}`"));
        }
        if !matches!(
            kind,
            "counter" | "gauge" | "histogram" | "summary" | "untyped"
        ) {
            return Err(format!("bad metric type `{kind}`: `{line}`"));
        }
        return Ok(());
    }
    if line.starts_with('#') {
        return Ok(()); // other comments are legal
    }
    let (name_part, value_part) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: `{line}`"))?;
            (&line[..brace], line[close + 1..].trim())
        }
        None => {
            let sp = line
                .find(' ')
                .ok_or_else(|| format!("sample without value: `{line}`"))?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    if !valid_name(name_part) {
        return Err(format!("bad sample name `{name_part}`: `{line}`"));
    }
    let value = value_part.split_whitespace().next().unwrap_or("");
    if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
        return Err(format!("bad sample value `{value}`: `{line}`"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_exposition_format() {
        let m = Metrics::new();
        let c = m.counter("crisp_requests_total", "HTTP requests served.");
        let g = m.gauge("crisp_queue_depth", "Jobs admitted but unfinished.");
        m.gauge_fn("crisp_up", "Always one.", || 1.0);
        let h = m.histogram("crisp_request_seconds", "Request latency.", &[0.1, 1.0]);
        c.add(3);
        g.set(2.0);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(30.0);
        let golden = "\
# HELP crisp_requests_total HTTP requests served.
# TYPE crisp_requests_total counter
crisp_requests_total 3
# HELP crisp_queue_depth Jobs admitted but unfinished.
# TYPE crisp_queue_depth gauge
crisp_queue_depth 2
# HELP crisp_up Always one.
# TYPE crisp_up gauge
crisp_up 1
# HELP crisp_request_seconds Request latency.
# TYPE crisp_request_seconds histogram
crisp_request_seconds_bucket{le=\"0.1\"} 1
crisp_request_seconds_bucket{le=\"1\"} 2
crisp_request_seconds_bucket{le=\"+Inf\"} 3
crisp_request_seconds_sum 30.55
crisp_request_seconds_count 3
";
        assert_eq!(m.render(), golden);
        for line in m.render().lines() {
            check_exposition_line(line).unwrap();
        }
    }

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let m = Metrics::new();
        let c = m.counter("c_total", "c");
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = m.gauge("g", "g");
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
        assert!(m.render().contains("g -2.5"));
    }

    #[test]
    fn labeled_counter_renders_sorted_escaped_children() {
        let m = Metrics::new();
        let c = m.labeled_counter(
            "crisp_prefetch_issued_total",
            "Prefetches issued, by mechanism.",
            "prefetcher",
        );
        c.with("spp").add(7);
        c.with("ghbw").inc();
        c.with("we\"ird").inc();
        let text = m.render();
        // BTreeMap order: ghbw before spp, regardless of touch order.
        let ghbw = text.find("crisp_prefetch_issued_total{prefetcher=\"ghbw\"} 1");
        let spp = text.find("crisp_prefetch_issued_total{prefetcher=\"spp\"} 7");
        assert!(ghbw.unwrap() < spp.unwrap(), "{text}");
        assert!(
            text.contains("crisp_prefetch_issued_total{prefetcher=\"we\\\"ird\"} 1"),
            "{text}"
        );
        for line in text.lines() {
            check_exposition_line(line).unwrap_or_else(|e| panic!("{e}"));
        }
        assert_eq!(c.samples().len(), 3);
    }

    #[test]
    fn histogram_buckets_cumulate_and_count() {
        let m = Metrics::new();
        let h = m.histogram("h", "h", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 8.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        let text = m.render();
        assert!(text.contains("h_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("h_count 5"), "{text}");
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_registration_panics() {
        let m = Metrics::new();
        let _ = m.counter("dup_total", "a");
        let _ = m.counter("dup_total", "b");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let _ = Metrics::new().counter("1bad-name", "x");
    }

    #[test]
    fn exposition_line_checker_accepts_valid_and_names_invalid() {
        for ok in [
            "# HELP x y z",
            "# TYPE x counter",
            "x 1",
            "x{le=\"0.5\",job=\"a b\"} 2.5",
            "x_bucket{le=\"+Inf\"} 7",
            "",
        ] {
            check_exposition_line(ok).unwrap_or_else(|e| panic!("{e}"));
        }
        assert!(check_exposition_line("x").is_err());
        assert!(check_exposition_line("2x 1").is_err());
        assert!(check_exposition_line("x notanumber").is_err());
        assert!(check_exposition_line("# TYPE x flavor").is_err());
        assert!(check_exposition_line("x{le=\"1\" 3").is_err());
    }
}
