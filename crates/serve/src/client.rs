//! Blocking job-API client with bounded, jittered retries.
//!
//! The client reuses the harness's [`RetryPolicy`] (deterministic
//! SplitMix64 jitter) for its backoff schedule. Transient failures —
//! connect errors, I/O errors, 429 (queue full) and 503 (draining or
//! over the connection cap) — are retried up to the policy's budget; a
//! server-advertised `Retry-After` overrides the nominal delay (capped
//! by the policy's ceiling so tests and impatient callers stay fast).
//! Hard rejections (400, 404) are never retried.

use crate::api::SubmitRequest;
use crate::http::{read_response, HttpError};
use crisp_harness::json::{parse, Value};
use crisp_harness::RetryPolicy;
use crisp_store::fnv1a128;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// Backoff budget for transient failures.
    pub retry: RetryPolicy,
    /// Per-request connect/read/write timeout.
    pub timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: "127.0.0.1:7199".to_string(),
            retry: RetryPolicy {
                max_retries: 5,
                base: Duration::from_millis(200),
                cap: Duration::from_secs(5),
            },
            timeout: Duration::from_secs(10),
        }
    }
}

/// Why a client call failed for good.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with a non-retryable error status.
    Rejected {
        /// HTTP status code.
        status: u16,
        /// The structured error body's `error` field (or raw body).
        message: String,
    },
    /// The retry budget ran out on transient failures.
    Exhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// The last transient failure, one line.
        last: String,
    },
    /// The server spoke something that is not our protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { status, message } => {
                write!(f, "server rejected request ({status}): {message}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking client for one daemon endpoint.
#[derive(Clone, Debug)]
pub struct Client {
    cfg: ClientConfig,
}

impl Client {
    /// Creates a client for `cfg.addr`.
    pub fn new(cfg: ClientConfig) -> Client {
        Client { cfg }
    }

    /// The configured daemon address.
    pub fn addr(&self) -> &str {
        &self.cfg.addr
    }

    /// Submits a sweep; returns the acknowledgement body (`id`, `state`,
    /// `cells`, `warm_cells`, `coalesced`).
    ///
    /// # Errors
    ///
    /// [`ClientError`] once the retry budget is exhausted or the server
    /// rejects the submission outright.
    pub fn submit(&self, request: &SubmitRequest) -> Result<Value, ClientError> {
        let (status, body) = self.request_with_retry("POST", "/jobs", Some(&request.encode()))?;
        match status {
            200 | 202 => Ok(body),
            _ => Err(rejected(status, &body)),
        }
    }

    /// Fetches a job's status document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a 4xx answer.
    pub fn status(&self, id_hex: &str) -> Result<Value, ClientError> {
        let (status, body) = self.request_with_retry("GET", &format!("/jobs/{id_hex}"), None)?;
        match status {
            200 => Ok(body),
            _ => Err(rejected(status, &body)),
        }
    }

    /// Fetches a job's result: `Some(result)` once finished, `None`
    /// while still queued or running (HTTP 202).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a 4xx answer.
    pub fn result(&self, id_hex: &str) -> Result<Option<Value>, ClientError> {
        let (status, body) =
            self.request_with_retry("GET", &format!("/jobs/{id_hex}/result"), None)?;
        match status {
            200 => Ok(Some(body)),
            202 => Ok(None),
            _ => Err(rejected(status, &body)),
        }
    }

    /// Fetches the daemon's `/stats` document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or an error answer.
    pub fn stats(&self) -> Result<Value, ClientError> {
        let (status, body) = self.request_with_retry("GET", "/stats", None)?;
        match status {
            200 => Ok(body),
            _ => Err(rejected(status, &body)),
        }
    }

    /// Follows a job's live event stream (`GET /jobs/<id>/events?from=N`)
    /// over one connection, invoking `on_event` for every NDJSON event
    /// line. Server keepalive chunks are filtered out and not counted.
    ///
    /// Returns `(delivered, ended)`: how many event lines were delivered
    /// (resume a dropped stream with `from + delivered`), and whether the
    /// stream terminated cleanly (the job finished) rather than the
    /// connection dropping mid-stream. A dropped connection is *not* an
    /// error — the caller decides whether to reconnect.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on a 4xx answer (unknown job),
    /// [`ClientError::Exhausted`] when the connection could not even be
    /// established (transient — back off and retry), and
    /// [`ClientError::Protocol`] when the server's framing is not ours.
    pub fn follow(
        &self,
        id_hex: &str,
        from: usize,
        on_event: &mut dyn FnMut(&Value),
    ) -> Result<(usize, bool), ClientError> {
        let transient = |last: String| ClientError::Exhausted { attempts: 1, last };
        let mut stream = connect(&self.cfg.addr, self.cfg.timeout).map_err(transient)?;
        stream
            .set_read_timeout(Some(self.cfg.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.cfg.timeout)))
            .map_err(|e| transient(format!("set timeouts: {e}")))?;
        let raw = format!(
            "GET /jobs/{id_hex}/events?from={from} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.cfg.addr
        );
        use std::io::Read;
        stream
            .write_all(raw.as_bytes())
            .map_err(|e| transient(format!("send: {e}")))?;

        // Read the response head; whatever follows it seeds the chunk
        // decoder.
        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if buf.len() > 64 * 1024 {
                return Err(ClientError::Protocol("response head never ended".into()));
            }
            let mut chunk = [0u8; 4096];
            let n = stream
                .read(&mut chunk)
                .map_err(|e| transient(format!("recv head: {e}")))?;
            if n == 0 {
                return Err(transient("connection closed before head".into()));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line in `{head}`")))?;
        let mut rest: Vec<u8> = buf[head_end + 4..].to_vec();
        if status != 200 {
            let mut tail = Vec::new();
            let _ = stream.read_to_end(&mut tail);
            rest.extend_from_slice(&tail);
            let text = String::from_utf8_lossy(&rest);
            let body = parse(&text).unwrap_or(Value::Obj(vec![]));
            return Err(rejected(status, &body));
        }
        if !head
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
        {
            return Err(ClientError::Protocol(
                "events response is not chunked".into(),
            ));
        }

        // Incremental chunked-transfer decoding: chunk payloads are
        // concatenated into `line_buf`, and every complete NDJSON line
        // is delivered as it lands.
        let mut delivered = 0usize;
        let mut line_buf: Vec<u8> = Vec::new();
        let mut deliver = |line_buf: &mut Vec<u8>, delivered: &mut usize| {
            while let Some(nl) = line_buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = line_buf.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..nl]);
                if text.trim().is_empty() {
                    continue;
                }
                let Ok(event) = parse(&text) else {
                    continue; // tolerate torn/foreign lines
                };
                if event.get("event").and_then(Value::as_str) == Some("keepalive") {
                    continue; // injected by the server, not a file line
                }
                *delivered += 1;
                on_event(&event);
            }
        };
        loop {
            // A chunk head (`<hex size>\r\n`) must be in `rest`.
            let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") else {
                if rest.len() > 1024 * 1024 {
                    return Err(ClientError::Protocol("unterminated chunk size".into()));
                }
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return Ok((delivered, false)), // dropped
                    Ok(n) => rest.extend_from_slice(&chunk[..n]),
                }
                continue;
            };
            let size_text = String::from_utf8_lossy(&rest[..pos]).into_owned();
            let size_hex = size_text.split(';').next().unwrap_or("").trim();
            let Ok(size) = usize::from_str_radix(size_hex, 16) else {
                return Err(ClientError::Protocol(format!(
                    "bad chunk size `{size_text}`"
                )));
            };
            if size == 0 {
                deliver(&mut line_buf, &mut delivered);
                return Ok((delivered, true)); // clean terminator: job done
            }
            if size > 1024 * 1024 {
                return Err(ClientError::Protocol(format!("chunk of {size} bytes")));
            }
            let frame_end = pos + 2 + size + 2; // size line + payload + CRLF
            if rest.len() < frame_end {
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return Ok((delivered, false)), // dropped
                    Ok(n) => rest.extend_from_slice(&chunk[..n]),
                }
                continue;
            }
            line_buf.extend_from_slice(&rest[pos + 2..pos + 2 + size]);
            rest.drain(..frame_end);
            deliver(&mut line_buf, &mut delivered);
        }
    }

    /// One round trip with bounded retries on transient failures.
    /// Returns the first non-transient `(status, parsed body)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when every attempt failed transiently,
    /// [`ClientError::Protocol`] on an unparseable response.
    pub fn request_with_retry(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Value), ClientError> {
        // Seed the jitter from the request identity so concurrent
        // clients desynchronise but a replayed run does not.
        let seed = fnv1a128(format!("{method} {path}").as_bytes()) as u64;
        let attempts = self.cfg.retry.max_attempts();
        let mut last = String::new();
        for attempt in 1..=attempts {
            match self.once(method, path, body) {
                Ok((status, retry_after, raw)) => {
                    if status == 429 || status == 503 {
                        last = format!("HTTP {status}: {}", error_line(&raw));
                        if attempt < attempts {
                            // Honor Retry-After, but never beyond the
                            // policy's ceiling.
                            let delay = retry_after
                                .map(|s| Duration::from_secs(s).min(self.cfg.retry.cap))
                                .unwrap_or_else(|| self.cfg.retry.delay(attempt, seed));
                            std::thread::sleep(delay);
                        }
                        continue;
                    }
                    let text = String::from_utf8_lossy(&raw);
                    let parsed = parse(&text)
                        .map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))?;
                    return Ok((status, parsed));
                }
                Err(e) => {
                    last = e;
                    if attempt < attempts {
                        std::thread::sleep(self.cfg.retry.delay(attempt, seed));
                    }
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// A single request attempt: connect, write, read to EOF.
    fn once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Option<u64>, Vec<u8>), String> {
        let mut stream = connect(&self.cfg.addr, self.cfg.timeout)?;
        stream
            .set_read_timeout(Some(self.cfg.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.cfg.timeout)))
            .map_err(|e| format!("set timeouts: {e}"))?;
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.cfg.addr,
            body.len()
        );
        stream
            .write_all(raw.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        read_response(&mut stream).map_err(|e: HttpError| format!("recv: {}", e.message()))
    }
}

/// `TcpStream::connect_timeout` needs a resolved `SocketAddr`.
fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    use std::net::ToSocketAddrs;
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    TcpStream::connect_timeout(&resolved, timeout).map_err(|e| format!("connect {addr}: {e}"))
}

fn rejected(status: u16, body: &Value) -> ClientError {
    ClientError::Rejected {
        status,
        message: body
            .get("error")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| body.encode()),
    }
}

fn error_line(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    parse(&text)
        .ok()
        .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| text.chars().take(120).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::write_response;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// A scripted server: answers each connection with the next canned
    /// `(status, retry_after)` response.
    fn scripted_server(script: Vec<(u16, Option<u64>)>) -> (String, Arc<AtomicU32>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(AtomicU32::new(0));
        let count = Arc::clone(&served);
        std::thread::spawn(move || {
            for (status, retry_after) in script {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut sink = [0u8; 4096];
                // Drain the request (client half-closes are fine).
                let _ = stream.read(&mut sink);
                let headers: Vec<String> = retry_after
                    .map(|s| vec![format!("Retry-After: {s}")])
                    .unwrap_or_default();
                let body = if status < 400 {
                    "{\"ok\":true}".to_string()
                } else {
                    crate::api::error_body("busy", "scripted")
                };
                let _ = write_response(&mut stream, status, "Scripted", &headers, &body);
                count.fetch_add(1, Ordering::SeqCst);
            }
        });
        (addr, served)
    }

    fn fast_client(addr: String) -> Client {
        Client::new(ClientConfig {
            addr,
            retry: RetryPolicy {
                max_retries: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(5),
            },
            timeout: Duration::from_secs(2),
        })
    }

    #[test]
    fn retries_through_429_until_success() {
        let (addr, served) = scripted_server(vec![(429, Some(0)), (503, None), (200, None)]);
        let client = fast_client(addr);
        let (status, body) = client.request_with_retry("GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(served.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn hard_rejections_are_not_retried() {
        let (addr, served) = scripted_server(vec![(400, None), (200, None)]);
        let client = fast_client(addr);
        let err = client.status("zzzz").unwrap_err();
        assert!(
            matches!(err, ClientError::Rejected { status: 400, .. }),
            "{err}"
        );
        assert_eq!(served.load(Ordering::SeqCst), 1, "400 must not be retried");
    }

    #[test]
    fn exhaustion_reports_the_last_transient_failure() {
        // Bind-then-drop gives a port with nothing listening.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = fast_client(addr);
        let err = client
            .request_with_retry("GET", "/healthz", None)
            .unwrap_err();
        match err {
            ClientError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 4);
                assert!(last.contains("connect"), "{last}");
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn pending_results_map_to_none() {
        let (addr, _) = scripted_server(vec![(202, None)]);
        let client = fast_client(addr);
        // 202 carries a JSON state body in the real protocol; the
        // scripted body is `{"ok":true}` which parses fine.
        assert_eq!(client.result("00").unwrap(), None);
    }
}
