//! # crisp-serve
//!
//! The long-running sweep service: a dependency-free HTTP/1.1 + JSON
//! job API over [`std::net::TcpListener`] that wraps the crisp-harness
//! supervisor, built for the "many clients, heavy traffic" shape of
//! ROADMAP item 3. Robustness is the headline:
//!
//! - **admission control** — a bounded job queue with explicit
//!   backpressure (HTTP 429 + `Retry-After`), per-connection I/O
//!   timeouts, a connection cap, and head/body size limits so slow or
//!   hostile clients cannot wedge the accept loop;
//! - **idempotent submission** — jobs are keyed by the 128-bit FNV-1a
//!   fingerprint of their canonical cell set, so duplicate or
//!   overlapping sweeps coalesce onto in-flight work and warm cells are
//!   served from `crisp-store` without re-simulation;
//! - **graceful drain** — SIGTERM stops admission, in-flight cells
//!   finish or abort cooperatively via [`crisp_sim::CancelToken`], the
//!   manifest is fsync'd, and the process exits 0;
//! - **crash recovery** — on restart the daemon scans its job registry,
//!   re-queues incomplete jobs, and resumes them through the
//!   supervisor's `--resume` path, so a client polling a pre-crash job
//!   id gets byte-identical tables.
//!
//! Module map: [`http`] (wire format), [`api`] (request/response
//! bodies), [`registry`] (on-disk job records), [`daemon`] (accept
//! loop, queue, executor), [`client`] (retrying HTTP client),
//! [`signal`] (SIGTERM/SIGINT latch).
//!
//! The daemon is generic over *planning* (turning a submission into a
//! cell set) and *execution* (running the sweep): the `crisp-serve`
//! binary in `crates/bench` injects the real simulation cells, while
//! tests inject toy closures so the service machinery is exercised in
//! milliseconds.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod daemon;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod signal;

pub use api::{JobState, SubmitRequest};
pub use client::{Client, ClientConfig, ClientError};
pub use daemon::{
    run_daemon, DaemonConfig, ExecCtx, ExecFn, ExecResult, JobPlan, PlanFn, PrefetchTotals,
    DEFAULT_QUEUE_CAP,
};
pub use http::{
    read_request, write_chunk, write_chunk_end, write_chunked_head, write_response, HttpError,
    HttpLimits, Request,
};
pub use metrics::{check_exposition_line, Counter, Gauge, Histogram, LabeledCounter, Metrics};
pub use registry::{JobRecord, Registry};
