//! The daemon's on-disk job registry — what crash recovery reads.
//!
//! Layout under the data directory:
//!
//! ```text
//! jobs/<32-hex job id>/request.json   admitted submission (atomic write)
//! jobs/<32-hex job id>/run.jsonl      the sweep's crisp-harness manifest
//! jobs/<32-hex job id>/result.json    final result (atomic write)
//! jobs/<32-hex job id>/spans.jsonl    cross-process span log (append-only)
//! ```
//!
//! A job directory with a `request.json` but no `result.json` is, by
//! definition, incomplete: on restart the daemon re-queues it (in
//! admission order, via the persisted sequence number) and resumes its
//! sweep through the supervisor's `--resume` path against `run.jsonl`.
//! Both JSON files are written atomically (tmp + fsync + rename), so a
//! SIGKILL at any instant leaves either the old state or the new —
//! never a torn file.

use crate::api::SubmitRequest;
use crisp_harness::json::{parse, Value};
use crisp_store::key_hex;
use std::path::{Path, PathBuf};

/// One admitted job as persisted in `request.json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// 128-bit job id: the FNV-1a fingerprint of the job's canonical
    /// cell set (which makes submission idempotent).
    pub id: u128,
    /// Admission order, for fair FIFO recovery.
    pub seq: u64,
    /// The submission, canonicalized.
    pub request: SubmitRequest,
    /// The sweep spec string the manifest header records.
    pub spec: String,
    /// Store keys of every cell in the job.
    pub cells: Vec<u128>,
}

impl JobRecord {
    fn encode(&self) -> String {
        Value::Obj(vec![
            ("v".to_string(), Value::Num(1.0)),
            ("id".to_string(), Value::Str(key_hex(self.id))),
            ("seq".to_string(), Value::Num(self.seq as f64)),
            ("request".to_string(), self.request.to_value()),
            ("spec".to_string(), Value::Str(self.spec.clone())),
            (
                "cells".to_string(),
                Value::Arr(self.cells.iter().map(|&k| Value::Str(key_hex(k))).collect()),
            ),
        ])
        .encode()
    }

    fn decode(text: &str) -> Option<JobRecord> {
        let v = parse(text).ok()?;
        if v.get("v")?.as_u64()? != 1 {
            return None;
        }
        Some(JobRecord {
            id: u128::from_str_radix(v.get("id")?.as_str()?, 16).ok()?,
            seq: v.get("seq")?.as_u64()?,
            request: SubmitRequest::from_value(v.get("request")?).ok()?,
            spec: v.get("spec")?.as_str()?.to_string(),
            cells: v
                .get("cells")?
                .as_arr()?
                .iter()
                .map(|k| u128::from_str_radix(k.as_str()?, 16).ok())
                .collect::<Option<Vec<u128>>>()?,
        })
    }
}

/// The registry rooted at `<data>/jobs`.
#[derive(Debug)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// Opens (creating if needed) the registry under `data_dir`.
    ///
    /// # Errors
    ///
    /// A one-line message if the directory cannot be created.
    pub fn open(data_dir: &Path) -> Result<Registry, String> {
        let root = data_dir.join("jobs");
        std::fs::create_dir_all(&root).map_err(|e| format!("create {}: {e}", root.display()))?;
        Ok(Registry { root })
    }

    /// A job's directory (which may not exist yet).
    pub fn job_dir(&self, id: u128) -> PathBuf {
        self.root.join(key_hex(id))
    }

    /// Where a job's sweep manifest lives.
    pub fn manifest_path(&self, id: u128) -> PathBuf {
        self.job_dir(id).join("run.jsonl")
    }

    /// Where a job's live event stream (NDJSON, append-only) lives —
    /// what `GET /jobs/<id>/events` tails.
    pub fn events_path(&self, id: u128) -> PathBuf {
        self.job_dir(id).join("events.jsonl")
    }

    /// Where a job's cross-process span log lives — what
    /// `crisp obs spans` renders. Every layer (daemon, supervisor,
    /// worker) appends via `crisp_harness::spanlog`.
    pub fn spans_path(&self, id: u128) -> PathBuf {
        self.job_dir(id).join("spans.jsonl")
    }

    fn request_path(&self, id: u128) -> PathBuf {
        self.job_dir(id).join("request.json")
    }

    fn result_path(&self, id: u128) -> PathBuf {
        self.job_dir(id).join("result.json")
    }

    /// Whether a job has been admitted (its `request.json` exists).
    pub fn is_admitted(&self, id: u128) -> bool {
        self.request_path(id).is_file()
    }

    /// Whether a job has a final result.
    pub fn has_result(&self, id: u128) -> bool {
        self.result_path(id).is_file()
    }

    /// Persists an admitted job (atomic; fsyncs file and directory).
    ///
    /// # Errors
    ///
    /// A one-line message on any filesystem failure.
    pub fn persist(&self, record: &JobRecord) -> Result<(), String> {
        let dir = self.job_dir(record.id);
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        atomic_write(&self.request_path(record.id), record.encode().as_bytes())
    }

    /// Loads one job record, if present and well-formed.
    pub fn load(&self, id: u128) -> Option<JobRecord> {
        let text = std::fs::read_to_string(self.request_path(id)).ok()?;
        JobRecord::decode(&text)
    }

    /// Persists a job's final result document (atomic).
    ///
    /// # Errors
    ///
    /// A one-line message on any filesystem failure.
    pub fn write_result(&self, id: u128, result: &Value) -> Result<(), String> {
        atomic_write(&self.result_path(id), result.encode().as_bytes())
    }

    /// Loads a job's final result document.
    pub fn load_result(&self, id: u128) -> Option<Value> {
        let text = std::fs::read_to_string(self.result_path(id)).ok()?;
        parse(&text).ok()
    }

    /// Every admitted-but-unfinished job, in admission order — the
    /// crash-recovery work list. Unreadable or torn records are skipped
    /// (they never had a durable admission acknowledged).
    pub fn recover(&self) -> Vec<JobRecord> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut incomplete: Vec<JobRecord> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name();
                let id = u128::from_str_radix(name.to_str()?, 16).ok()?;
                if self.has_result(id) {
                    return None;
                }
                self.load(id)
            })
            .collect();
        incomplete.sort_by_key(|r| r.seq);
        incomplete
    }

    /// The next admission sequence number (one past the largest
    /// persisted), so recovery and new admissions keep a total order.
    pub fn next_seq(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        entries
            .filter_map(|e| {
                let name = e.ok()?.file_name();
                let id = u128::from_str_radix(name.to_str()?, 16).ok()?;
                Some(self.load(id)?.seq + 1)
            })
            .max()
            .unwrap_or(0)
    }

    /// `(admitted, finished)` job counts, for `/stats`.
    pub fn counts(&self) -> (usize, usize) {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return (0, 0);
        };
        let mut admitted = 0;
        let mut finished = 0;
        for e in entries.flatten() {
            if let Some(id) = e
                .file_name()
                .to_str()
                .and_then(|n| u128::from_str_radix(n, 16).ok())
            {
                if self.is_admitted(id) {
                    admitted += 1;
                    if self.has_result(id) {
                        finished += 1;
                    }
                }
            }
        }
        (admitted, finished)
    }
}

/// tmp + fsync + rename + directory fsync, so the target is either the
/// old content or the new — never torn.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let dir = path.parent().ok_or("path has no parent")?;
    let tmp = path.with_extension("tmp");
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        f.write_all(bytes)
            .and_then(|()| f.sync_data())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_registry(tag: &str) -> (PathBuf, Registry) {
        let dir = std::env::temp_dir().join(format!("crisp-serve-registry-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let reg = Registry::open(&dir).unwrap();
        (dir, reg)
    }

    fn record(id: u128, seq: u64) -> JobRecord {
        JobRecord {
            id,
            seq,
            request: SubmitRequest {
                targets: vec!["fig1".into()],
                workloads: Some(vec!["mcf".into()]),
                scale: "tiny".into(),
                prefetcher: None,
            },
            spec: format!("spec-{seq}"),
            cells: vec![id ^ 1, id ^ 2],
        }
    }

    #[test]
    fn records_round_trip_and_recovery_orders_by_seq() {
        let (dir, reg) = temp_registry("roundtrip");
        let (a, b) = (record(0xaa, 1), record(0xbb, 0));
        reg.persist(&a).unwrap();
        reg.persist(&b).unwrap();
        assert_eq!(reg.load(0xaa), Some(a.clone()));
        assert!(reg.is_admitted(0xaa) && !reg.has_result(0xaa));
        assert_eq!(reg.next_seq(), 2);

        let recovered = reg.recover();
        assert_eq!(
            recovered,
            vec![b, a.clone()],
            "admission order, not dir order"
        );

        // A finished job leaves the recovery list.
        reg.write_result(a.id, &Value::Obj(vec![("ok".into(), Value::Bool(true))]))
            .unwrap();
        assert!(reg.has_result(a.id));
        assert_eq!(
            reg.load_result(a.id).unwrap().get("ok"),
            Some(&Value::Bool(true))
        );
        assert_eq!(reg.recover().len(), 1);
        assert_eq!(reg.counts(), (2, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_records_and_alien_directories_are_skipped() {
        let (dir, reg) = temp_registry("torn");
        reg.persist(&record(0xcc, 0)).unwrap();
        // A torn request.json (no durable admission) and an alien dir.
        let torn = reg.job_dir(0xdd);
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("request.json"), b"{\"v\":1,\"id\":\"no").unwrap();
        std::fs::create_dir_all(dir.join("jobs").join("not-a-job-id")).unwrap();
        let recovered = reg.recover();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].id, 0xcc);
        std::fs::remove_dir_all(&dir).ok();
    }
}
