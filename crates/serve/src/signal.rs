//! SIGTERM/SIGINT latch without a libc dependency.
//!
//! The handler does the only thing that is async-signal-safe here:
//! store a relaxed `true` into a process-wide [`AtomicBool`]. Nothing
//! blocks on a signal — the daemon's accept loop and `crisp-bench`'s
//! sweep path poll [`triggered`] (or hand a [`CancelToken`] to
//! [`watch`]) and drain cooperatively. glibc's `signal()` installs the
//! handler with `SA_RESTART`, so blocking syscalls are *not*
//! interrupted; every loop that must notice shutdown promptly therefore
//! uses non-blocking I/O plus short naps rather than relying on `EINTR`.

use crisp_sim::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! The one `unsafe` corner of the workspace: registering a signal
    //! handler requires an FFI call. The handler body is a single atomic
    //! store — async-signal-safe by construction.
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn handle(_sig: i32) {
        super::TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `handle` only performs an atomic store, which is
        // async-signal-safe; the handler address stays valid for the
        // life of the process.
        unsafe {
            signal(SIGTERM, handle as *const () as usize);
            signal(SIGINT, handle as *const () as usize);
        }
    }
}

/// Installs the SIGTERM/SIGINT latch. Idempotent; a no-op on non-Unix
/// targets (where [`triggered`] simply never fires).
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Whether SIGTERM or SIGINT has been received since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Test hook: trip the latch as if a signal had arrived.
pub fn trigger_for_test() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Spawns a watcher thread that cancels `token` once a signal arrives
/// (10 ms poll). The thread also exits if the token is cancelled by
/// someone else, so it never outlives the work it guards.
pub fn watch(token: CancelToken) {
    std::thread::spawn(move || loop {
        if triggered() {
            token.cancel();
            return;
        }
        if token.is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_cancels_the_token_after_a_signal() {
        install();
        let token = CancelToken::new();
        watch(token.clone());
        assert!(!token.is_cancelled());
        trigger_for_test();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !token.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "watcher never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
