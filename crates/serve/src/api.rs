//! JSON bodies of the job API.
//!
//! Request bodies are untrusted network input: they are parsed with
//! [`crisp_harness::json::parse_with_limits`] (depth- and size-capped)
//! and every shape error becomes a structured 400, never a panic.

use crisp_harness::json::{parse_with_limits, ParseLimits, Value};

/// Nesting allowed in request bodies — the API schema is two levels
/// deep, so 16 leaves generous headroom while bounding hostile input.
pub const BODY_MAX_DEPTH: usize = 16;

/// A sweep submission (`POST /jobs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Report targets (figure names and/or `table1`), render order.
    pub targets: Vec<String>,
    /// Optional workload filter applied to every figure.
    pub workloads: Option<Vec<String>>,
    /// Simulation scale name (`tiny`, `fast`, `full`).
    pub scale: String,
    /// Optional hardware-prefetcher override (`NAME[:k=v,…][+NAME…]`,
    /// e.g. `spp:depth=4+stride`). Validated and canonicalized by the
    /// planner; `None` keeps the Skylake default zoo.
    pub prefetcher: Option<String>,
}

impl SubmitRequest {
    /// Canonical JSON encoding — also what the registry persists, so a
    /// recovered daemon re-plans from exactly what was admitted.
    pub fn encode(&self) -> String {
        self.to_value().encode()
    }

    /// The request as a JSON value.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![(
            "targets".to_string(),
            Value::Arr(self.targets.iter().cloned().map(Value::Str).collect()),
        )];
        if let Some(w) = &self.workloads {
            pairs.push((
                "workloads".to_string(),
                Value::Arr(w.iter().cloned().map(Value::Str).collect()),
            ));
        }
        pairs.push(("scale".to_string(), Value::Str(self.scale.clone())));
        if let Some(p) = &self.prefetcher {
            pairs.push(("prefetcher".to_string(), Value::Str(p.clone())));
        }
        Value::Obj(pairs)
    }

    /// Decodes a parsed body. `Err` carries a one-line reason for the
    /// 400 response.
    pub fn from_value(v: &Value) -> Result<SubmitRequest, String> {
        let strings = |v: &Value, what: &str| -> Result<Vec<String>, String> {
            v.as_arr()
                .ok_or_else(|| format!("`{what}` must be an array of strings"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("`{what}` must be an array of strings"))
                })
                .collect()
        };
        let targets = strings(v.get("targets").ok_or("missing `targets`")?, "targets")?;
        if targets.is_empty() {
            return Err("`targets` must not be empty".into());
        }
        let workloads = match v.get("workloads") {
            Some(w) => Some(strings(w, "workloads")?),
            None => None,
        };
        let scale = v
            .get("scale")
            .and_then(Value::as_str)
            .ok_or("missing or non-string `scale`")?
            .to_string();
        let prefetcher = match v.get("prefetcher") {
            Some(p) => Some(
                p.as_str()
                    .ok_or("`prefetcher` must be a string")?
                    .to_string(),
            ),
            None => None,
        };
        Ok(SubmitRequest {
            targets,
            workloads,
            scale,
            prefetcher,
        })
    }

    /// Parses raw body bytes with hostile-input limits.
    ///
    /// # Errors
    ///
    /// A one-line reason for the 400 response.
    pub fn parse(body: &[u8], max_bytes: usize) -> Result<SubmitRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let limits = ParseLimits {
            max_depth: BODY_MAX_DEPTH,
            max_bytes: Some(max_bytes),
        };
        let v = parse_with_limits(text, limits).map_err(|e| e.to_string())?;
        SubmitRequest::from_value(&v)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for the executor.
    Queued,
    /// The executor is sweeping its cells.
    Running,
    /// Finished with every cell completed.
    Done,
    /// Finished with at least one permanently failed cell.
    Failed,
}

impl JobState {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A structured error body: `{"error": "...", "detail": "..."}`.
pub fn error_body(error: &str, detail: &str) -> String {
    Value::Obj(vec![
        ("error".to_string(), Value::Str(error.to_string())),
        ("detail".to_string(), Value::Str(detail.to_string())),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubmitRequest {
        SubmitRequest {
            targets: vec!["fig1".into(), "table1".into()],
            workloads: Some(vec!["mcf".into()]),
            scale: "tiny".into(),
            prefetcher: None,
        }
    }

    #[test]
    fn submit_round_trips_through_canonical_json() {
        let req = sample();
        assert_eq!(SubmitRequest::parse(req.encode().as_bytes(), 4096), Ok(req));
        let no_filter = SubmitRequest {
            workloads: None,
            ..sample()
        };
        assert_eq!(
            SubmitRequest::parse(no_filter.encode().as_bytes(), 4096),
            Ok(no_filter)
        );
        let with_pf = SubmitRequest {
            prefetcher: Some("spp:depth=4+stride".into()),
            ..sample()
        };
        assert!(with_pf.encode().contains("\"prefetcher\""));
        assert_eq!(
            SubmitRequest::parse(with_pf.encode().as_bytes(), 4096),
            Ok(with_pf)
        );
    }

    #[test]
    fn malformed_submissions_get_one_line_reasons() {
        for (body, needle) in [
            (&b"not json"[..], "at byte"),
            (b"{}", "targets"),
            (b"{\"targets\":[]}", "empty"),
            (b"{\"targets\":[1],\"scale\":\"tiny\"}", "array of strings"),
            (b"{\"targets\":[\"fig1\"]}", "scale"),
            (
                &b"{\"targets\":[\"fig1\"],\"scale\":\"tiny\",\"prefetcher\":1}"[..],
                "prefetcher",
            ),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let err = SubmitRequest::parse(body, 4096).unwrap_err();
            assert!(err.contains(needle), "{body:?} -> {err}");
        }
    }

    #[test]
    fn hostile_bodies_hit_depth_and_size_limits() {
        let deep = "[".repeat(1000);
        let err = SubmitRequest::parse(deep.as_bytes(), 4096).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let err = SubmitRequest::parse(sample().encode().as_bytes(), 4).unwrap_err();
        assert!(err.contains("too large"), "{err}");
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body("queue full", "retry later");
        let v = crisp_harness::json::parse(&body).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("queue full"));
    }
}
