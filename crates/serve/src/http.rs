//! A deliberately tiny HTTP/1.1 subset for the job API.
//!
//! Untrusted input rules: the request head is capped, the body is
//! capped, `Content-Length` must parse, and every malformed shape maps
//! to a typed [`HttpError`] with a 4xx status — the parser must never
//! panic on arbitrary byte soup (property-tested in
//! `tests/http_props.rs`). Responses always carry `Content-Length` and
//! `Connection: close`: one request per connection keeps the state
//! machine trivial and leaks nothing across clients.

use std::io::{Read, Write};

/// Size limits applied while reading one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes of request head (request line + headers).
    pub max_head_bytes: usize,
    /// Maximum bytes of request body.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or headers are malformed.
    BadRequest(String),
    /// The head exceeded [`HttpLimits::max_head_bytes`].
    HeadersTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// The declared or received body exceeded
    /// [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// The declared `Content-Length`.
        length: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The socket's read timeout expired mid-request (slow client).
    Timeout,
    /// Any other I/O failure.
    Io(String),
}

impl HttpError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Timeout => 408,
            HttpError::Io(_) => 400,
        }
    }

    /// One-line human description for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("bad request: {m}"),
            HttpError::HeadersTooLarge { limit } => {
                format!("request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { length, limit } => {
                format!("request body of {length} bytes exceeds {limit}")
            }
            HttpError::Timeout => "request timed out".to_string(),
            HttpError::Io(m) => format!("i/o error: {m}"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for HttpError {}

fn io_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/jobs/0123…`.
    pub path: String,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request from `stream`, enforcing `limits`.
///
/// # Errors
///
/// Every malformed, oversized, or timed-out request becomes a typed
/// [`HttpError`]; the caller maps it to a 4xx response.
pub fn read_request(stream: &mut impl Read, limits: &HttpLimits) -> Result<Request, HttpError> {
    // Read byte-wise chunks until the blank line; the cap bounds memory
    // and wall-clock against drip-feeding clients (with the socket's
    // read timeout bounding each chunk).
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            // The cap applies even when the whole head arrived in one
            // chunk — a 200-byte path is over-limit whether or not it
            // was drip-fed.
            if pos + 4 > limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            break pos;
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        let mut chunk = [0u8; 512];
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of head".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not UTF-8".into()))?;
    let (method, path, content_length) = parse_head(head)?;

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            length: body_len,
            limit: limits.max_body_bytes,
        });
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > body_len {
        return Err(HttpError::BadRequest(
            "body longer than Content-Length".into(),
        ));
    }
    while body.len() < body_len {
        let mut chunk = vec![0u8; (body_len - body.len()).min(4096)];
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of body".into(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the head (request line + headers) into
/// `(method, path, content_length)`.
fn parse_head(head: &str) -> Result<(String, String, Option<usize>), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::BadRequest("bad method".into()))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::BadRequest("bad request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::BadRequest("bad HTTP version".into())),
    }
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("bad request line".into()));
    }

    let mut content_length = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header line `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?;
            if content_length.replace(n).is_some() {
                return Err(HttpError::BadRequest("duplicate Content-Length".into()));
            }
        }
    }
    Ok((method.to_string(), path.to_string(), content_length))
}

/// Writes one response with `Content-Length` and `Connection: close`,
/// plus any `extra_headers` (already formatted as `Name: value`). The
/// body is JSON unless `extra_headers` carries its own `Content-Type`
/// (the Prometheus `/metrics` endpoint serves
/// `text/plain; version=0.0.4`).
///
/// # Errors
///
/// [`HttpError::Io`] / [`HttpError::Timeout`] on socket failure.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[String],
    body: &str,
) -> Result<(), HttpError> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if !extra_headers
        .iter()
        .any(|h| h.to_ascii_lowercase().starts_with("content-type:"))
    {
        head.push_str("Content-Type: application/json\r\n");
    }
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| io_error(&e))
}

/// Starts a chunked (streaming) response: status line + headers with
/// `Transfer-Encoding: chunked` instead of `Content-Length`. Follow with
/// any number of [`write_chunk`] calls and one [`write_chunk_end`].
///
/// # Errors
///
/// [`HttpError::Io`] / [`HttpError::Timeout`] on socket failure.
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> Result<(), HttpError> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| io_error(&e))
}

/// Writes one chunk (hex size line + payload) and flushes, so live
/// streams reach the client without buffering. Empty payloads are
/// skipped — a zero-length chunk would terminate the stream.
///
/// # Errors
///
/// [`HttpError::Io`] / [`HttpError::Timeout`] on socket failure.
pub fn write_chunk(stream: &mut impl Write, payload: &[u8]) -> Result<(), HttpError> {
    if payload.is_empty() {
        return Ok(());
    }
    stream
        .write_all(format!("{:x}\r\n", payload.len()).as_bytes())
        .and_then(|()| stream.write_all(payload))
        .and_then(|()| stream.write_all(b"\r\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| io_error(&e))
}

/// Terminates a chunked response (the zero-length chunk).
///
/// # Errors
///
/// [`HttpError::Io`] / [`HttpError::Timeout`] on socket failure.
pub fn write_chunk_end(stream: &mut impl Write) -> Result<(), HttpError> {
    stream
        .write_all(b"0\r\n\r\n")
        .and_then(|()| stream.flush())
        .map_err(|e| io_error(&e))
}

/// Reads one response from `stream` (the client side):
/// `(status, retry_after_seconds, body)`.
///
/// # Errors
///
/// [`HttpError`] for malformed or oversized responses (the client
/// enforces a generous 1 MiB body cap against a misbehaving server).
pub fn read_response(stream: &mut impl Read) -> Result<(u16, Option<u64>, Vec<u8>), HttpError> {
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            break;
        }
        raw.extend_from_slice(&chunk[..n]);
        if raw.len() > 1024 * 1024 {
            return Err(HttpError::BadRequest("response too large".into()));
        }
    }
    let head_end = find_head_end(&raw)
        .ok_or_else(|| HttpError::BadRequest("response head never ended".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| HttpError::BadRequest("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty response".into()))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("bad status line `{status_line}`")))?;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    Ok((status, retry_after, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &bytes[..], &HttpLimits::default())
    }

    #[test]
    fn minimal_get_parses() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_with_body_parses() {
        let req = parse_bytes(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"a\":\"b\"}xy",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":\"b\"}xy");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse_bytes(b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (bytes, expect_status) in [
            (&b"garbage\r\n\r\n"[..], 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"GET / SPDY/9\r\n\r\n", 400),
            (b"GET / HTTP/1.1 extra\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
                400,
            ),
            (b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", 400),
        ] {
            let err = parse_bytes(bytes).unwrap_err();
            assert_eq!(err.status(), expect_status, "{bytes:?} -> {err:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_map_to_431_and_413() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        let err = read_request(&mut long_head.as_bytes(), &limits).unwrap_err();
        assert_eq!(err.status(), 431);

        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let err = read_request(&mut &big_body[..], &limits).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("9 bytes exceeds 8"), "{err}");
    }

    #[test]
    fn truncated_requests_do_not_hang_or_panic() {
        for bytes in [
            &b""[..],
            b"GET",
            b"GET / HTTP/1.1\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(parse_bytes(bytes).is_err(), "{bytes:?}");
        }
    }

    #[test]
    fn chunked_responses_frame_and_terminate_correctly() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire, 200, "OK", "application/x-ndjson").unwrap();
        write_chunk(&mut wire, b"{\"event\":\"cell-started\"}\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire, b"{\"event\":\"cell-done\"}\n").unwrap();
        write_chunk_end(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(
            text.contains("19\r\n{\"event\":\"cell-started\"}\n\r\n"),
            "{text}"
        );
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }

    #[test]
    fn responses_round_trip_through_the_client_reader() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            429,
            "Too Many Requests",
            &["Retry-After: 3".to_string()],
            "{\"error\":\"queue full\"}",
        )
        .unwrap();
        let (status, retry_after, body) = read_response(&mut &wire[..]).unwrap();
        assert_eq!(status, 429);
        assert_eq!(retry_after, Some(3));
        assert_eq!(body, b"{\"error\":\"queue full\"}");
    }
}
