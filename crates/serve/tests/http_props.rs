//! Property tests for the hand-rolled HTTP/1.1 request parser.
//!
//! The parser faces raw network bytes, so the property that matters is
//! total robustness: for *any* input — random bytes, truncations,
//! single-byte corruptions of valid requests, hostile repetition — it
//! must return either a parsed request or a typed [`HttpError`] that
//! maps to a 4xx status. It must never panic, hang, or allocate without
//! bound.

use crisp_serve::{read_request, HttpLimits};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::subsequence;

fn parse(bytes: &[u8]) -> Result<crisp_serve::Request, crisp_serve::HttpError> {
    read_request(&mut &bytes[..], &HttpLimits::default())
}

/// A status code the daemon can actually send back for a parse failure.
fn assert_client_error(bytes: &[u8], err: &crisp_serve::HttpError) {
    let status = err.status();
    assert!(
        matches!(status, 400 | 408 | 413 | 431),
        "{bytes:?} -> unexpected status {status} for {err:?}"
    );
    assert!(
        !err.message().is_empty(),
        "{bytes:?} -> empty error message"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Pure fuzz: arbitrary bytes never panic, and every rejection is a
    /// typed 4xx.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..1500)) {
        if let Err(e) = parse(&bytes) {
            assert_client_error(&bytes, &e);
        }
    }

    /// Corruption: flip one byte of a well-formed POST anywhere in the
    /// head or body. The parser accepts (if the flip landed somewhere
    /// inert) or rejects with a typed error — never panics.
    #[test]
    fn corrupted_valid_requests_never_panic(pos in 0usize..64, val in any::<u8>()) {
        let mut bytes =
            b"POST /jobs HTTP/1.1\r\nContent-Length: 17\r\n\r\n{\"targets\":[\"a\"]}".to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = val;
        if let Err(e) = parse(&bytes) {
            assert_client_error(&bytes, &e);
        }
    }

    /// Truncation: any prefix of a valid request either parses (the
    /// full input) or is rejected — typed, not hung.
    #[test]
    fn truncated_valid_requests_are_rejected(cut in 0usize..61) {
        let full = b"POST /jobs HTTP/1.1\r\nContent-Length: 17\r\n\r\n{\"targets\":[\"a\"]}";
        let bytes = &full[..cut.min(full.len() - 1)];
        match parse(bytes) {
            Ok(req) => panic!("truncated request parsed: {req:?}"),
            Err(e) => assert_client_error(bytes, &e),
        }
    }

    /// Structured fuzz: shuffled fragments of plausible HTTP tokens.
    /// Closer to the parser's branch structure than raw bytes, and still
    /// must never panic.
    #[test]
    fn shuffled_http_fragments_never_panic(
        parts in subsequence(
            vec![
                &b"GET "[..], &b"POST "[..], &b"/jobs"[..], &b"/jobs/00ff"[..],
                &b" HTTP/1.1"[..], &b" HTTP/9.9"[..], &b"\r\n"[..],
                &b"Content-Length: 5"[..], &b"Content-Length: -1"[..],
                &b"Content-Length: 99999999999999999999"[..], &b": value"[..],
                &b"Host"[..], &b"\r\n\r\n"[..], &b"hello"[..],
                &b"\x00\xff\xfe"[..], &b" "[..], &b"\r"[..], &b"\n"[..],
            ],
            1..12,
        ),
        repeat in 1usize..4,
    ) {
        let mut bytes = Vec::new();
        for _ in 0..repeat {
            for p in &parts {
                bytes.extend_from_slice(p);
            }
        }
        if let Err(e) = parse(&bytes) {
            assert_client_error(&bytes, &e);
        }
    }
}

/// Anything the parser accepts satisfies the invariants the router
/// depends on: non-empty uppercase method, slash-prefixed path, body no
/// longer than the declared limit.
#[test]
fn accepted_requests_uphold_router_invariants() {
    let mut rng_state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let limits = HttpLimits::default();
    let mut accepted = 0;
    for _ in 0..4096 {
        let len = (next() % 96) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        // Seed half the cases with a valid-ish skeleton so some parse.
        let input = if next() & 1 == 0 {
            let mut v = b"GET / HTTP/1.1\r\n\r\n".to_vec();
            v.extend_from_slice(&bytes);
            v
        } else {
            bytes
        };
        if let Ok(req) = read_request(&mut &input[..], &limits) {
            accepted += 1;
            assert!(!req.method.is_empty());
            assert_eq!(req.method, req.method.to_ascii_uppercase());
            assert!(req.path.starts_with('/'), "path {:?}", req.path);
            assert!(req.body.len() <= limits.max_body_bytes);
        }
    }
    assert!(accepted > 0, "seeded skeletons should sometimes parse");
}
