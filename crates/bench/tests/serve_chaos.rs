//! Chaos tests against the real `crisp-serve` daemon and `crisp` client
//! binaries: the fault-tolerance contract of the job API.
//!
//! - **SIGKILL mid-cell**: kill the daemon while a job's sweep is inside
//!   a cell, restart over the same data directory, and the *same* job id
//!   polls through to tables byte-identical to an unchaosed reference
//!   run, with each unique cell simulated at most once across both
//!   daemon lifetimes (manifest-verified) and a clean `crisp cache
//!   verify`.
//! - **Queue-full storm**: with an admission cap of 1, a burst of
//!   distinct submissions yields exactly one 202 and 429s (with
//!   `Retry-After`) for the rest; no admitted job is lost or run twice,
//!   and no refused job leaves any trace.
//! - **Graceful drain**: SIGTERM mid-job exits 0, leaves the job
//!   incomplete, and a restart recovers and finishes it.

use crisp_harness::journal::{AttemptOutcome, AttemptRecord};
use crisp_harness::json::Value;
use crisp_harness::RetryPolicy;
use crisp_serve::{Client, ClientConfig, SubmitRequest};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_crisp-serve");
const CRISP_BIN: &str = env!("CARGO_BIN_EXE_crisp");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-serve-chaos-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A daemon process plus the client pointed at it.
struct Daemon {
    child: Child,
    client: Client,
}

fn spawn_daemon(data: &Path, store: &Path, extra: &[&str]) -> Daemon {
    // A fresh spawn must not race against a previous lifetime's
    // endpoint file.
    std::fs::remove_file(data.join("endpoint")).ok();
    let child = Command::new(SERVE_BIN)
        .arg("--data")
        .arg(data)
        .arg("--store")
        .arg(store)
        .args(["--heartbeat", "50", "--quiet"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crisp-serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(data.join("endpoint")) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published {}/endpoint",
            data.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    Daemon {
        child,
        client: Client::new(ClientConfig {
            addr,
            ..ClientConfig::default()
        }),
    }
}

impl Daemon {
    fn submit(&self, targets: &[&str], workloads: &[&str]) -> Value {
        self.client
            .submit(&SubmitRequest {
                targets: targets.iter().map(|s| s.to_string()).collect(),
                workloads: Some(workloads.iter().map(|s| s.to_string()).collect()),
                scale: "tiny".to_string(),
                prefetcher: None,
            })
            .expect("submit")
    }

    fn wait_state(&self, id: &str, want: &str) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let state = self
                .client
                .status(id)
                .ok()
                .and_then(|v| v.get("state").and_then(Value::as_str).map(str::to_string))
                .unwrap_or_default();
            if state == want {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} never reached `{want}` (last `{state}`)"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn wait_result(&self, id: &str) -> Value {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Some(doc) = self.client.result(id).expect("poll result") {
                return doc;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn sigterm(&self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
    }
}

fn rendered(doc: &Value) -> String {
    doc.get("rendered")
        .and_then(Value::as_str)
        .expect("result has rendered tables")
        .to_string()
}

fn id_of(ack: &Value) -> String {
    ack.get("id")
        .and_then(Value::as_str)
        .expect("ack has id")
        .to_string()
}

/// Per-job computed-attempt counts from a job's `run.jsonl` manifest —
/// ok records *without* store provenance, i.e. actual simulations.
fn computed_counts(manifest: &Path) -> HashMap<String, usize> {
    let text = std::fs::read_to_string(manifest).expect("read run.jsonl");
    let mut counts = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rec) = AttemptRecord::decode(line) {
            if matches!(rec.outcome, AttemptOutcome::Ok { cached: None, .. }) {
                *counts.entry(rec.job).or_insert(0) += 1;
            }
        }
    }
    counts
}

fn cache_verify_clean(store: &Path) {
    let out = Command::new(CRISP_BIN)
        .args(["cache", "verify", "--store"])
        .arg(store)
        .output()
        .expect("run crisp cache verify");
    assert!(
        out.status.success(),
        "cache verify failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sigkill_mid_cell_then_restart_resumes_to_byte_identical_tables() {
    let root = temp_dir("sigkill");
    let targets = ["fig11"];
    let workloads = ["mcf", "lbm"];

    // Reference: an unchaosed daemon lifetime over its own store.
    let ref_tables = {
        let mut d = spawn_daemon(&root.join("ref-data"), &root.join("ref-store"), &[]);
        let ack = d.submit(&targets, &workloads);
        let tables = rendered(&d.wait_result(&id_of(&ack)));
        d.sigterm();
        let status = d.child.wait().expect("wait daemon");
        assert_eq!(status.code(), Some(0), "drain must exit 0");
        tables
    };
    assert!(ref_tables.contains("Figure 11"), "{ref_tables}");

    // Chaos lifetime: wide mid-cell windows, then SIGKILL while running.
    let data = root.join("data");
    let store = root.join("store");
    let mut d = spawn_daemon(&data, &store, &["--cell-delay-ms", "600"]);
    let ack = d.submit(&targets, &workloads);
    let id = id_of(&ack);
    assert_eq!(
        ack.get("state").and_then(Value::as_str),
        Some("queued"),
        "{ack:?}"
    );
    d.wait_state(&id, "running");
    // The first cell is inside its 600 ms delay window right now.
    std::thread::sleep(Duration::from_millis(100));
    d.child.kill().expect("SIGKILL daemon");
    d.child.wait().expect("reap");

    // Restart over the same data dir: the pre-crash job id must recover,
    // resume, and finish — polled through the *new* daemon.
    let d2 = spawn_daemon(&data, &store, &[]);
    d2.wait_state(&id, "done");
    let result = d2.wait_result(&id);
    assert_eq!(
        rendered(&result),
        ref_tables,
        "post-crash tables must be byte-identical to the clean reference"
    );

    // Exactly-once: across both daemon lifetimes, no cell was simulated
    // twice (the manifest spans the crash; store hits don't count).
    let counts = computed_counts(&data.join("jobs").join(&id).join("run.jsonl"));
    assert!(!counts.is_empty(), "manifest recorded no computed cells");
    for (job, n) in &counts {
        assert_eq!(*n, 1, "cell {job} was simulated {n} times");
    }

    // And the store the crash interrupted still verifies clean.
    cache_verify_clean(&store);

    // Idempotence across restarts: resubmitting the finished sweep —
    // with the workload filter deliberately reordered — coalesces onto
    // the done job with every cell warm.
    let again = d2.submit(&targets, &["lbm", "mcf"]);
    assert_eq!(id_of(&again), id);
    assert_eq!(again.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(
        again.get("warm_cells"),
        Some(&Value::Num(counts.len() as f64)),
        "{again:?}"
    );

    d2.sigterm();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn storm_gets_429_backpressure_and_loses_no_admitted_job() {
    let root = temp_dir("storm");
    let d = spawn_daemon(
        &root.join("data"),
        &root.join("store"),
        &["--queue", "1", "--cell-delay-ms", "500"],
    );
    // A client with no retry budget, so 429s surface instead of backing off.
    let no_retry = Client::new(ClientConfig {
        addr: d.client.addr().to_string(),
        retry: RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        },
        timeout: Duration::from_secs(10),
    });
    let submit_raw = |workload: &str| {
        let req = SubmitRequest {
            targets: vec!["fig11".to_string()],
            workloads: Some(vec![workload.to_string()]),
            scale: "tiny".to_string(),
            prefetcher: None,
        };
        no_retry.submit(&req)
    };

    // First submission is admitted and occupies the single queue slot.
    let admitted = submit_raw("mcf").expect("first submission admitted");
    let admitted_id = id_of(&admitted);

    // The storm: distinct jobs against a full queue must all be refused
    // with 429 + Retry-After (surfaced as exhaustion by the no-retry
    // client), and must leave no trace in the registry.
    let mut refused = Vec::new();
    for workload in ["lbm", "xhpcg", "namd"] {
        match submit_raw(workload) {
            Err(crisp_serve::ClientError::Exhausted { last, .. }) => {
                assert!(last.contains("429"), "expected 429, got: {last}");
                assert!(last.contains("queue full"), "{last}");
                refused.push(workload);
            }
            other => panic!("storm submission for {workload} was not refused: {other:?}"),
        }
    }
    assert_eq!(refused.len(), 3);

    // A duplicate of the *admitted* job coalesces instead of consuming
    // queue capacity or being refused.
    let dup = submit_raw("mcf").expect("duplicate of admitted job coalesces");
    assert_eq!(id_of(&dup), admitted_id);
    assert_eq!(dup.get("coalesced"), Some(&Value::Bool(true)));

    // The admitted job is never lost: it completes exactly once.
    let result = d.wait_result(&admitted_id);
    assert_eq!(
        result.get("state").and_then(Value::as_str),
        Some("done"),
        "{result:?}"
    );

    // Refused jobs left no trace — their ids were never admitted.
    for workload in refused {
        let id = expected_job_id(workload);
        assert!(
            matches!(
                d.client.status(&id),
                Err(crisp_serve::ClientError::Rejected { status: 404, .. })
            ),
            "refused job {workload} left a registry trace"
        );
    }

    // Capacity freed: a previously refused job now admits and finishes.
    let retry = submit_raw("lbm").expect("post-storm submission admitted");
    let retry_result = d.wait_result(&id_of(&retry));
    assert_eq!(
        retry_result.get("state").and_then(Value::as_str),
        Some("done")
    );

    let stats = d.client.stats().expect("stats");
    assert_eq!(
        stats.get("rejected_busy"),
        Some(&Value::Num(3.0)),
        "{stats:?}"
    );

    d.sigterm();
    std::fs::remove_dir_all(&root).ok();
}

/// The job id a `fig11`/tiny/single-workload submission maps to,
/// derived exactly the way the daemon's planner does: canonical sweep
/// spec + content-addressed cell keys. Lets the storm test probe ids
/// that were refused admission and so never existed server-side.
fn expected_job_id(workload: &str) -> String {
    use crisp_bench::sweep::{build_jobs, sweep_spec, SweepConfig};
    let cfg = SweepConfig {
        scale: crisp_bench::ExperimentScale::Tiny,
        targets: vec!["fig11".to_string()],
        workloads: Some(vec![workload.to_string()]),
        ..SweepConfig::default()
    };
    let cells: Vec<u128> = build_jobs(&cfg)
        .iter()
        .map(|j| crisp_harness::cell_key(&j.id, &j.spec))
        .collect();
    crisp_store::key_hex(crisp_serve::daemon::job_id(&sweep_spec(&cfg), &cells))
}

#[test]
fn sigterm_drains_exit_zero_and_restart_completes_the_job() {
    let root = temp_dir("drain");
    let data = root.join("data");
    let store = root.join("store");
    let mut d = spawn_daemon(&data, &store, &["--cell-delay-ms", "500"]);
    let ack = d.submit(&["fig11"], &["mcf"]);
    let id = id_of(&ack);
    d.wait_state(&id, "running");

    // SIGTERM mid-cell: the daemon must drain and exit 0, leaving the
    // job admitted but unfinished.
    d.sigterm();
    let status = d.child.wait().expect("wait daemon");
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
    assert!(
        data.join("jobs").join(&id).join("request.json").is_file(),
        "drained job must stay admitted"
    );
    assert!(
        !data.join("jobs").join(&id).join("result.json").is_file(),
        "drained job must not have a result yet"
    );

    // Restart recovers and completes it under the same id.
    let d2 = spawn_daemon(&data, &store, &[]);
    let result = d2.wait_result(&id);
    assert_eq!(
        result.get("state").and_then(Value::as_str),
        Some("done"),
        "{result:?}"
    );
    assert!(rendered(&result).contains("Figure 11"));
    d2.sigterm();
    std::fs::remove_dir_all(&root).ok();
}
