//! Result-store chaos tests against the real `crisp-bench` binary: warm
//! re-runs must serve every cell from the store and render byte-identical
//! tables; corrupt entries must be quarantined and transparently
//! re-simulated; a SIGKILL mid-sweep must never leave an entry the scrub
//! cannot either verify or quarantine; and two concurrent sweeps sharing
//! one store must simulate each unique cell exactly once between them.

use crisp_harness::store::{Lookup, Store};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_crisp-bench");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-bench-store-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(BIN).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "crisp-bench {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Parses the `[crisp-bench] store: H hit(s), C computed, Q quarantined`
/// stderr summary into (hits, computed, quarantined).
fn store_counts(stderr: &[u8]) -> (usize, usize, usize) {
    let text = String::from_utf8_lossy(stderr);
    let line = text
        .lines()
        .find(|l| l.contains("store:"))
        .unwrap_or_else(|| panic!("no store summary in stderr:\n{text}"));
    let nums: Vec<usize> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "unparsable store summary: {line}");
    (nums[0], nums[1], nums[2])
}

fn cell_files(store: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let Ok(shards) = std::fs::read_dir(store.join("objects")) else {
        return found;
    };
    for shard in shards.filter_map(Result::ok) {
        if let Ok(entries) = std::fs::read_dir(shard.path()) {
            found.extend(
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "cell")),
            );
        }
    }
    found.sort();
    found
}

fn quarantined_files(store: &Path) -> usize {
    std::fs::read_dir(store.join("quarantine"))
        .map(|d| d.filter_map(Result::ok).count())
        .unwrap_or(0)
}

/// Cold populate, warm re-run: zero cells re-simulated, tables identical.
#[test]
fn warm_rerun_serves_every_cell_and_renders_identically() {
    let dir = temp_dir("warm");
    let store = dir.join("store");
    let args = [
        "--tiny",
        "--quiet",
        "--workloads",
        "mcf,lbm",
        "fig11",
        "--store",
        store.to_str().unwrap(),
    ];

    let cold = run(&args);
    let (hits, computed, quarantined) = store_counts(&cold.stderr);
    assert_eq!((hits, computed, quarantined), (0, 2, 0), "cold run");

    let warm = run(&args);
    let (hits, computed, quarantined) = store_counts(&warm.stderr);
    assert_eq!((hits, computed, quarantined), (2, 0, 0), "warm run");
    assert_eq!(
        warm.stdout, cold.stdout,
        "warm tables must be byte-identical to the cold run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A flipped byte in a published entry: the sweep quarantines it,
/// re-simulates the cell, republishes, and still renders identically.
#[test]
fn corrupt_entry_is_quarantined_and_recomputed() {
    let dir = temp_dir("corrupt");
    let store = dir.join("store");
    let args = [
        "--tiny",
        "--quiet",
        "--workloads",
        "mcf,lbm",
        "fig11",
        "--store",
        store.to_str().unwrap(),
    ];

    let cold = run(&args);
    let cells = cell_files(&store);
    assert_eq!(cells.len(), 2);
    let victim = &cells[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(victim, &bytes).unwrap();

    let rerun = run(&args);
    let (hits, computed, quarantined) = store_counts(&rerun.stderr);
    assert_eq!(
        (hits, computed, quarantined),
        (1, 1, 1),
        "one clean hit, one quarantine + recompute"
    );
    assert_eq!(
        rerun.stdout, cold.stdout,
        "corruption must not leak into tables"
    );
    assert_eq!(quarantined_files(&store), 1, "the bad bytes are preserved");
    assert!(victim.exists(), "the recomputed entry was republished");

    // And the republished store is fully warm again.
    let warm = run(&args);
    let (hits, computed, _) = store_counts(&warm.stderr);
    assert_eq!((hits, computed), (2, 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL while the sweep is publishing: whatever the store holds
/// afterwards, a full scrub must find only verifiable entries — torn
/// writes stay invisible behind the atomic rename — and a rerun completes
/// with every cell served or recomputed, never a corrupt read.
#[test]
fn sigkill_mid_sweep_leaves_only_verifiable_entries() {
    let dir = temp_dir("sigkill");
    let store = dir.join("store");
    let args = [
        "--tiny",
        "--quiet",
        "--workloads",
        "mcf,lbm",
        "fig11",
        "--store",
        store.to_str().unwrap(),
    ];

    let mut child: Child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    // Kill as soon as the first entry lands — mid-sweep, possibly mid-write
    // of the second entry.
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(120) {
        if !cell_files(&store).is_empty() || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    let _ = child.wait();

    let st = Store::open(&store).expect("open after SIGKILL");
    let scrub = st.verify().expect("scrub after SIGKILL");
    assert!(
        scrub.quarantined.is_empty(),
        "a SIGKILL must not publish torn entries: {:?}",
        scrub.quarantined
    );
    drop(st);

    let rerun = run(&args);
    let (hits, computed, quarantined) = store_counts(&rerun.stderr);
    assert_eq!(hits + computed, 2, "every cell served or recomputed");
    assert_eq!(quarantined, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Two processes sweeping the same cells against one store: the lock
/// protocol makes each unique cell simulate exactly once across both, and
/// both render the same tables.
#[test]
fn concurrent_sweeps_simulate_each_cell_exactly_once() {
    let dir = temp_dir("concurrent");
    let store = dir.join("store");
    let args = [
        "--tiny",
        "--quiet",
        "--workloads",
        "mcf,lbm",
        "fig11",
        "--store",
        store.to_str().unwrap(),
    ];

    let spawn = || {
        Command::new(BIN)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sweeper")
    };
    let a = spawn();
    let b = spawn();
    let a = a.wait_with_output().expect("sweeper a");
    let b = b.wait_with_output().expect("sweeper b");
    for (name, out) in [("a", &a), ("b", &b)] {
        assert!(
            out.status.success(),
            "sweeper {name} failed: {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let (hits_a, computed_a, quarantined_a) = store_counts(&a.stderr);
    let (hits_b, computed_b, quarantined_b) = store_counts(&b.stderr);
    assert_eq!(
        computed_a + computed_b,
        2,
        "each unique cell simulates exactly once across both processes \
         (a: {hits_a} hit/{computed_a} computed, b: {hits_b} hit/{computed_b} computed)"
    );
    assert_eq!(hits_a + computed_a, 2, "sweeper a covered every cell");
    assert_eq!(hits_b + computed_b, 2, "sweeper b covered every cell");
    assert_eq!(quarantined_a + quarantined_b, 0);
    assert_eq!(a.stdout, b.stdout, "both sweeps render identical tables");

    // The store ends with exactly the two entries, each verifiable.
    let st = Store::open(&store).expect("open after race");
    let scrub = st.verify().expect("scrub after race");
    assert_eq!(scrub.checked, 2);
    assert!(scrub.quarantined.is_empty(), "{:?}", scrub.quarantined);
    for path in cell_files(&store) {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let key = crisp_harness::store::parse_key(&name).expect("entry name is a key");
        assert!(
            matches!(st.lookup(key), Ok(Lookup::Hit(_))),
            "{} must read back as a hit",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
