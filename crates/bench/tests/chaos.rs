//! Crash-chaos integration tests: SIGKILL the real `crisp-bench` binary
//! mid-sweep, resume from its manifest (and checkpoints), and require the
//! resumed run to print byte-identical tables to an uninterrupted one.
//!
//! These drive the actual binary (`CARGO_BIN_EXE_crisp-bench`), not the
//! library, so the whole chain is exercised: argument parsing, the
//! supervisor's journal, checkpoint files on disk, crash debris handling
//! and the renderer. The kill is a real SIGKILL — no destructors, no
//! flushes — exactly the failure the checkpoint layer exists for.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_crisp-bench");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-bench-chaos-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_to_completion(args: &[&str]) -> String {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn crisp-bench");
    assert!(
        out.status.success(),
        "crisp-bench {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

fn spawn_victim(args: &[&str]) -> Child {
    Command::new(BIN)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim crisp-bench")
}

/// Polls `cond` until it holds or the victim exits or `timeout` passes.
fn wait_for(child: &mut Child, cond: impl Fn() -> bool, timeout: Duration) {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() || child.try_wait().expect("try_wait").is_some() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn manifest_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| s.lines().count())
        .unwrap_or(0)
}

fn ckpt_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
                .count()
        })
        .unwrap_or(0)
}

/// SIGKILL between cells: the journal alone must carry the resume.
#[test]
fn sigkill_mid_sweep_then_resume_reproduces_identical_tables() {
    let dir = temp_dir("manifest");
    let reference_manifest = dir.join("reference.jsonl");
    let victim_manifest = dir.join("victim.jsonl");
    let base = [
        "--tiny",
        "--quiet",
        "--jobs",
        "1",
        "--workloads",
        "mcf,lbm",
        "fig11",
    ];

    let mut ref_args = base.to_vec();
    ref_args.extend(["--manifest", reference_manifest.to_str().unwrap()]);
    let reference = run_to_completion(&ref_args);
    assert!(reference.contains("Figure 11"), "{reference}");

    // Kill the victim once the manifest holds the header plus at least one
    // completed attempt — i.e. mid-sweep, with real salvageable state.
    let mut victim_args = base.to_vec();
    victim_args.extend(["--manifest", victim_manifest.to_str().unwrap()]);
    let mut child = spawn_victim(&victim_args);
    wait_for(
        &mut child,
        || manifest_lines(&victim_manifest) >= 2,
        Duration::from_secs(120),
    );
    let _ = child.kill();
    let _ = child.wait();

    let mut resume_args = base.to_vec();
    resume_args.extend(["--resume", victim_manifest.to_str().unwrap()]);
    let resumed = run_to_completion(&resume_args);
    assert_eq!(
        resumed, reference,
        "resumed tables must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL *inside* a cell with checkpointing enabled: the resumed run
/// restores the newest valid checkpoint and continues mid-workload.
#[test]
fn sigkill_mid_cell_resumes_from_checkpoints() {
    let dir = temp_dir("checkpoint");
    let reference_manifest = dir.join("reference.jsonl");
    let victim_manifest = dir.join("victim.jsonl");
    let victim_ckpt_dir = dir.join("victim.jsonl.ckpt.d");
    let base = ["--tiny", "--quiet", "--checkpoint-interval", "2000", "fig1"];

    let mut ref_args = base.to_vec();
    ref_args.extend(["--manifest", reference_manifest.to_str().unwrap()]);
    let reference = run_to_completion(&ref_args);
    assert!(reference.contains("Figure 1"), "{reference}");
    assert!(
        ckpt_files(&dir.join("reference.jsonl.ckpt.d")) >= 1,
        "the uninterrupted run wrote checkpoints too"
    );

    // Checkpoint files appear while the cell is still running, so waiting
    // for one and killing lands the SIGKILL mid-cell (if the machine is so
    // fast the run finished first, the kill is a no-op and the resume path
    // degenerates to a full-manifest restore — the assertion still holds).
    let mut victim_args = base.to_vec();
    victim_args.extend(["--manifest", victim_manifest.to_str().unwrap()]);
    let mut child = spawn_victim(&victim_args);
    wait_for(
        &mut child,
        || ckpt_files(&victim_ckpt_dir) >= 1,
        Duration::from_secs(120),
    );
    let _ = child.kill();
    let _ = child.wait();

    let mut resume_args = base.to_vec();
    resume_args.extend(["--resume", victim_manifest.to_str().unwrap()]);
    let resumed = run_to_completion(&resume_args);
    assert_eq!(
        resumed, reference,
        "a run resumed from mid-cell checkpoints must render byte-identical tables"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--audit-restore` is the end-to-end determinism proof the tests above
/// rely on; run it through the binary at tiny scale.
#[test]
fn audit_restore_mode_passes_at_tiny_scale() {
    let out = Command::new(BIN)
        .args([
            "--tiny",
            "--quiet",
            "--audit-restore",
            "--checkpoint-interval",
            "10000",
            "--workloads",
            "pointer_chase,mcf,lbm",
        ])
        .output()
        .expect("spawn crisp-bench");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "audit failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        stdout
    );
    assert!(stdout.contains("PASS"), "{stdout}");
    for w in ["pointer_chase", "mcf", "lbm"] {
        assert!(stdout.contains(w), "audit must cover {w}: {stdout}");
    }
}

/// Flag validation: checkpointing without a manifest is a usage error
/// (exit 2), not a silent no-op.
#[test]
fn checkpoint_interval_without_manifest_is_a_usage_error() {
    let out = Command::new(BIN)
        .args(["--tiny", "--checkpoint-interval", "2000", "fig1"])
        .output()
        .expect("spawn crisp-bench");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires --manifest"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
