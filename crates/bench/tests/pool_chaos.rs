//! Chaos tests for the multi-process worker pool: the crash-containment
//! contract of `--workers`.
//!
//! - **SIGKILL a worker mid-cell**: the daemon-side supervisor must
//!   survive, steal the dead worker's lease, recompute the cell on
//!   another worker, and render tables byte-identical to a serial
//!   in-process reference — with each unique cell simulated exactly
//!   once per manifest and a clean `crisp cache verify`.
//! - **Poison quarantine**: a cell that kills every worker it touches
//!   (`--inject-panic` aborts the worker process) is quarantined as
//!   DEGRADED with crash forensics after `poison_threshold` consecutive
//!   deaths, without sinking the sweep or the pool.
//! - **Version-skew refusal**: a worker reporting a mismatched semver
//!   is refused at handshake (pool spawn fails; worker exits 3).
//! - **Two pools, one store**: concurrent sweeps over a shared store
//!   compute each unique cell exactly once between them.
//! - **Over the wire**: `crisp-serve --workers 2` streams live NDJSON
//!   events for a submitted job through to its result.

use crisp_bench::sweep::{run_supervised_sweep, Chaos, SweepConfig, SweepOutput};
use crisp_bench::ExperimentScale;
use crisp_harness::journal::{AttemptOutcome, AttemptRecord};
use crisp_harness::json::Value;
use crisp_harness::{
    read_frame, write_frame, FailureClass, JobOutcome, PoolOptions, RetryPolicy, WorkerPool,
};
use crisp_serve::{Client, ClientConfig, SubmitRequest};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crisp-worker");
const SERVE_BIN: &str = env!("CARGO_BIN_EXE_crisp-serve");
const CRISP_BIN: &str = env!("CARGO_BIN_EXE_crisp");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-pool-chaos-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_pool(workers: usize, poison_threshold: u32) -> Arc<WorkerPool> {
    Arc::new(
        WorkerPool::spawn(PoolOptions {
            worker_bin: PathBuf::from(WORKER_BIN),
            workers,
            poison_threshold,
            ..PoolOptions::default()
        })
        .expect("spawn worker pool"),
    )
}

/// A tiny two-cell sweep (fig11 × {mcf, lbm}) with a fast retry clock.
fn tiny_cfg() -> SweepConfig {
    SweepConfig {
        scale: ExperimentScale::Tiny,
        targets: vec!["fig11".to_string()],
        workloads: Some(vec!["mcf".to_string(), "lbm".to_string()]),
        retry: RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
        },
        ..SweepConfig::default()
    }
}

/// The serial in-process reference: same cells, no pool, no store.
fn serial_reference() -> SweepOutput {
    let out = run_supervised_sweep(&tiny_cfg()).expect("serial reference sweep");
    assert!(out.rendered.contains("Figure 11"), "{}", out.rendered);
    out
}

/// Per-job computed-attempt counts from a manifest — ok records
/// *without* store provenance, i.e. actual simulations.
fn computed_counts(manifest: &Path) -> HashMap<String, usize> {
    let text = std::fs::read_to_string(manifest).expect("read manifest");
    let mut counts = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rec) = AttemptRecord::decode(line) {
            if matches!(rec.outcome, AttemptOutcome::Ok { cached: None, .. }) {
                *counts.entry(rec.job).or_insert(0) += 1;
            }
        }
    }
    counts
}

fn cache_verify_clean(store: &Path) {
    let out = Command::new(CRISP_BIN)
        .args(["cache", "verify", "--store"])
        .arg(store)
        .output()
        .expect("run crisp cache verify");
    assert!(
        out.status.success(),
        "cache verify failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// SIGKILL one pooled worker while it is inside a cell: the lease is
/// stolen, the cell recomputed on a live worker, and the tables come
/// out byte-identical to the serial reference.
#[test]
fn sigkill_worker_mid_cell_steals_lease_and_recomputes_identical_tables() {
    let root = temp_dir("sigkill");
    let reference = serial_reference();

    let pool = spawn_pool(2, 3);
    let status = pool.status();
    let killer = {
        let status = Arc::clone(&status);
        std::thread::spawn(move || {
            // Wait until a worker is actually executing a cell, give it
            // time to get inside the 600 ms delay window, then kill it.
            let deadline = Instant::now() + Duration::from_secs(60);
            while status
                .workers_busy
                .load(std::sync::atomic::Ordering::SeqCst)
                == 0
            {
                assert!(Instant::now() < deadline, "no worker ever went busy");
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(150));
            let pids = status.pids();
            let victim = *pids.first().expect("pool has live workers");
            let ok = Command::new("kill")
                .args(["-9", &victim.to_string()])
                .status()
                .expect("run kill")
                .success();
            assert!(ok, "kill -9 {victim} failed");
        })
    };

    let manifest = root.join("pooled.jsonl");
    let store = root.join("store");
    let mut cfg = tiny_cfg();
    cfg.workers = 2;
    cfg.pool = Some(Arc::clone(&pool));
    cfg.manifest = Some(manifest.clone());
    cfg.store = Some(store.clone());
    cfg.cell_delay = Some(Duration::from_millis(600));
    let out = run_supervised_sweep(&cfg).expect("pooled sweep");
    killer.join().expect("killer thread");

    assert!(!out.report.crashed, "the supervisor itself must survive");
    assert!(
        !out.degraded(),
        "the killed cell must be retried to success: {:?}",
        out.report.taxonomy()
    );
    assert_eq!(
        out.rendered, reference.rendered,
        "pooled tables must be byte-identical to the serial reference"
    );

    // The dead worker's lease was stolen, its replacement respawned.
    let steals = status.steals.load(std::sync::atomic::Ordering::SeqCst);
    assert!(steals >= 1, "expected at least one lease steal");
    assert_eq!(
        status
            .workers_alive
            .load(std::sync::atomic::Ordering::SeqCst),
        2,
        "the pool must respawn a replacement for the killed worker"
    );

    // Exactly-once: the crash shows up as a failed attempt, never as a
    // second successful simulation of the same cell.
    let counts = computed_counts(&manifest);
    assert_eq!(counts.len(), 2, "two unique cells: {counts:?}");
    for (job, n) in &counts {
        assert_eq!(*n, 1, "cell {job} was simulated {n} times");
    }
    cache_verify_clean(&store);

    pool.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// A poison cell — one that aborts its worker process on every attempt —
/// is quarantined after `poison_threshold` consecutive deaths, with
/// forensics on the DEGRADED outcome, while the rest of the sweep and
/// the pool itself carry on.
#[test]
fn poison_cell_quarantines_with_forensics_without_sinking_the_sweep() {
    let root = temp_dir("poison");
    let pool = spawn_pool(2, 2);
    let status = pool.status();

    let manifest = root.join("poison.jsonl");
    let store = root.join("store");
    let mut cfg = tiny_cfg();
    cfg.workers = 2;
    cfg.pool = Some(Arc::clone(&pool));
    cfg.manifest = Some(manifest.clone());
    cfg.store = Some(store.clone());
    cfg.chaos = Chaos {
        panic_once: vec!["mcf".to_string()],
        stall: Vec::new(),
    };
    let out = run_supervised_sweep(&cfg).expect("poisoned sweep");

    // The sweep completes degraded: the poison cell failed permanently,
    // the healthy cell rendered.
    assert!(!out.report.crashed);
    assert!(out.degraded(), "poison cell must degrade the sweep");
    assert!(out.rendered.contains("Figure 11"), "{}", out.rendered);

    let poisoned: Vec<(&String, &JobOutcome)> = out
        .report
        .outcomes
        .iter()
        .filter(|(id, _)| id.contains("mcf"))
        .collect();
    assert_eq!(poisoned.len(), 1);
    match poisoned[0].1 {
        JobOutcome::Failed {
            class,
            error,
            detail,
            ..
        } => {
            assert_eq!(*class, FailureClass::Poisoned, "{error}");
            assert!(error.contains("quarantined"), "{error}");
            // Forensics travel with the outcome: what killed the workers.
            let detail = detail.as_ref().expect("quarantine carries forensics");
            for key in ["argv", "exit", "stderr_tail", "consecutive_crashes"] {
                assert!(
                    detail.get(key).is_some(),
                    "forensics missing {key}: {detail:?}"
                );
            }
        }
        other => panic!("poison cell did not fail: {other:?}"),
    }
    for (id, outcome) in &out.report.outcomes {
        if id.contains("lbm") {
            assert!(
                matches!(outcome, JobOutcome::Completed { .. }),
                "healthy cell {id} must complete: {outcome:?}"
            );
        }
    }

    // The pool survived its serial killers and still has a full bench.
    assert!(status.poisoned.load(std::sync::atomic::Ordering::SeqCst) >= 1);
    assert_eq!(
        status
            .workers_alive
            .load(std::sync::atomic::Ordering::SeqCst),
        2
    );
    // Nothing poisonous was published: the store still verifies clean.
    cache_verify_clean(&store);

    pool.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Version skew is refused at handshake, from both ends: the pool
/// refuses to come up over mismatched workers, and a refused worker
/// exits with the dedicated code 3.
#[test]
fn version_skew_is_refused_at_handshake() {
    // Pool side: expecting a version no worker reports fails spawn.
    let err = WorkerPool::spawn(PoolOptions {
        worker_bin: PathBuf::from(WORKER_BIN),
        workers: 1,
        expect_version: "999.0.0".to_string(),
        ..PoolOptions::default()
    })
    .expect_err("skewed pool must refuse to spawn");
    assert!(err.contains("version skew"), "{err}");

    // Worker side: drive the handshake by hand and refuse it; the
    // worker must report the faked semver and exit 3.
    let mut child = Command::new(WORKER_BIN)
        .env("CRISP_WORKER_FAKE_VERSION", "0.0.1-skew")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crisp-worker");
    let mut stdout = child.stdout.take().expect("worker stdout");
    let hello = read_frame(&mut stdout)
        .expect("read hello")
        .expect("worker sent hello");
    assert_eq!(hello.get("type").and_then(Value::as_str), Some("hello"));
    assert_eq!(
        hello.get("version").and_then(Value::as_str),
        Some("0.0.1-skew")
    );
    let mut stdin = child.stdin.take().expect("worker stdin");
    write_frame(
        &mut stdin,
        &Value::Obj(vec![
            ("type".to_string(), Value::Str("refuse".to_string())),
            (
                "reason".to_string(),
                Value::Str("version skew (test)".to_string()),
            ),
        ]),
    )
    .expect("send refuse");
    let status = child.wait().expect("reap worker");
    assert_eq!(status.code(), Some(3), "refused worker must exit 3");
}

/// Two pools over one shared store: concurrent sweeps of the same cells
/// compute each unique cell exactly once between them (store advisory
/// locks), and both render identical tables.
#[test]
fn two_pools_sharing_one_store_compute_each_cell_exactly_once() {
    let root = temp_dir("shared-store");
    let reference = serial_reference();
    let store = root.join("store");

    fn run(tag: &str, root: &Path, store: &Path) -> SweepOutput {
        let pool = spawn_pool(2, 3);
        let mut cfg = tiny_cfg();
        cfg.workers = 2;
        cfg.pool = Some(Arc::clone(&pool));
        cfg.manifest = Some(root.join(format!("{tag}.jsonl")));
        cfg.store = Some(store.to_path_buf());
        cfg.cell_delay = Some(Duration::from_millis(200));
        let out = run_supervised_sweep(&cfg).expect("pooled sweep");
        pool.shutdown();
        out
    }
    let a = {
        let (root, store) = (root.clone(), store.clone());
        std::thread::spawn(move || run("pool-a", &root, &store))
    };
    let b = run("pool-b", &root, &store);
    let a = a.join().expect("pool-a thread");

    for (tag, out) in [("pool-a", &a), ("pool-b", &b)] {
        assert!(!out.report.crashed, "{tag} crashed");
        assert!(
            !out.degraded(),
            "{tag} degraded: {:?}",
            out.report.taxonomy()
        );
        assert_eq!(
            out.rendered, reference.rendered,
            "{tag} tables must match the serial reference"
        );
    }

    // Exactly-once across both sweeps: every unique cell was simulated
    // once in total; the other sweep took it as a store hit or waited
    // out the holder's lease and re-probed.
    let mut combined: HashMap<String, usize> = HashMap::new();
    for tag in ["pool-a", "pool-b"] {
        for (job, n) in computed_counts(&root.join(format!("{tag}.jsonl"))) {
            *combined.entry(job).or_insert(0) += n;
        }
    }
    assert_eq!(combined.len(), 2, "two unique cells: {combined:?}");
    for (job, n) in &combined {
        assert_eq!(*n, 1, "cell {job} was simulated {n} times across pools");
    }
    assert_eq!(
        a.report.store_hits + b.report.store_hits,
        2,
        "the non-computing sweep must take its cells as store hits"
    );
    cache_verify_clean(&store);
    std::fs::remove_dir_all(&root).ok();
}

/// Over the wire: a daemon started with `--workers 2` reports its pool
/// in `/stats`, streams live NDJSON events for a submitted job, and the
/// stream ends exactly when the result is available.
#[test]
fn serve_with_workers_streams_events_through_to_result() {
    let root = temp_dir("wire");
    let data = root.join("data");
    std::fs::create_dir_all(&data).unwrap();
    let mut child = Command::new(SERVE_BIN)
        .arg("--data")
        .arg(&data)
        .arg("--store")
        .arg(root.join("store"))
        .args(["--workers", "2", "--heartbeat", "50", "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crisp-serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(data.join("endpoint")) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "daemon never published endpoint");
        std::thread::sleep(Duration::from_millis(10));
    };
    let client = Client::new(ClientConfig {
        addr,
        ..ClientConfig::default()
    });

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("pool_ready"),
        Some(&Value::Bool(true)),
        "{stats:?}"
    );
    assert_eq!(
        stats.get("workers_alive"),
        Some(&Value::Num(2.0)),
        "{stats:?}"
    );

    let ack = client
        .submit(&SubmitRequest {
            targets: vec!["fig11".to_string()],
            workloads: Some(vec!["mcf".to_string()]),
            scale: "tiny".to_string(),
            prefetcher: None,
        })
        .expect("submit");
    let id = ack
        .get("id")
        .and_then(Value::as_str)
        .expect("ack has id")
        .to_string();

    // Follow the live stream to its end, reconnecting on drops exactly
    // like `crisp watch --follow` does.
    let mut names = Vec::new();
    let mut cursor = 0;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "event stream never ended");
        let (delivered, ended) = client
            .follow(&id, cursor, &mut |event| {
                if let Some(name) = event.get("event").and_then(Value::as_str) {
                    names.push(name.to_string());
                }
            })
            .expect("follow events");
        cursor += delivered;
        if ended {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    for want in ["cell-started", "cell-done"] {
        assert!(names.iter().any(|n| n == want), "missing {want}: {names:?}");
    }

    // The stream only ends once the result exists.
    let result = client
        .result(&id)
        .expect("poll result")
        .expect("stream ended, result must exist");
    let rendered = result
        .get("rendered")
        .and_then(Value::as_str)
        .expect("result has rendered tables");
    assert!(rendered.contains("Figure 11"), "{rendered}");

    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok);
    let status = child.wait().expect("reap daemon");
    assert_eq!(status.code(), Some(0), "drain must exit 0");
    std::fs::remove_dir_all(&root).ok();
}
