//! # crisp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 5). Each `fig*` function runs the relevant
//! workloads/configurations through the `crisp-core` pipeline and returns
//! a printable report; the `figures` binary exposes them on the command
//! line, and Criterion benchmarks (in `benches/`) cover component and
//! end-to-end throughput.
//!
//! Absolute numbers differ from the paper (this substrate is a from-
//! scratch simulator, not the authors' Scarab checkout and trace set);
//! the reproduction target is the *shape* of each result — who wins, by
//! roughly what factor, and where the crossovers fall. EXPERIMENTS.md
//! records paper-vs-measured for every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{
    ablations, fig1, fig10, fig11, fig12, fig4, fig7, fig8, fig9, table1, ExperimentScale,
};
