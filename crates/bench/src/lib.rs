//! # crisp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section 5). Each figure decomposes into
//! (workload, config) *cells* ([`cells`]); the `fig*` functions run them
//! serially (fail-fast), while the `crisp-bench` binary runs the full
//! sweep under the `crisp-harness` supervisor — worker pool, panic
//! isolation, per-job deadlines, retries with backoff, and a resumable
//! JSONL run manifest — salvaging partial results into `DEGRADED`
//! reports when cells fail permanently. The legacy `figures` binary
//! remains the serial entry point, and Criterion benchmarks (in
//! `benches/`) cover component and end-to-end throughput.
//!
//! Absolute numbers differ from the paper (this substrate is a from-
//! scratch simulator, not the authors' Scarab checkout and trace set);
//! the reproduction target is the *shape* of each result — who wins, by
//! roughly what factor, and where the crossovers fall. EXPERIMENTS.md
//! records paper-vs-measured for every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cells;
pub mod experiments;
pub mod render;
pub mod sweep;

pub use audit::{run_restore_audit, AuditLine};
pub use experiments::{
    ablations, fig1, fig10, fig11, fig12, fig4, fig7, fig8, fig9, table1, ExperimentScale,
};
pub use sweep::{
    all_targets, checkpoint_dir, run_supervised_sweep, Chaos, SweepConfig, SweepOutput,
};
