//! The checkpoint/restore determinism audit behind `--audit-restore`.
//!
//! For each audited workload the simulator runs the evaluation trace
//! straight through while capturing periodic machine snapshots, then
//! resumes a fresh machine from *every* captured snapshot and verifies
//! each resumed run finishes with byte-identical statistics
//! ([`crisp_sim::Simulator::audit_restore`]). A pass is the end-to-end
//! proof that a SIGKILL'd sweep resumed from a checkpoint produces the
//! same tables as an uninterrupted one.

use crate::experiments::ExperimentScale;
use crisp_core::{build, CrispError, Input};
use crisp_emu::Emulator;
use crisp_sim::Simulator;

/// Cycles between audit checkpoints when `--checkpoint-interval` is not
/// given: small enough that even `--tiny` runs capture several.
pub const DEFAULT_AUDIT_INTERVAL: u64 = 5_000;

/// The workloads audited when no `--workloads` filter is given: the
/// Figure 1 microbenchmark plus two memory-bound SPEC kernels with very
/// different machine-state shapes.
pub const DEFAULT_AUDIT_WORKLOADS: [&str; 3] = ["pointer_chase", "mcf", "lbm"];

/// One workload's audit outcome.
#[derive(Clone, Debug)]
pub struct AuditLine {
    /// Audited workload.
    pub workload: String,
    /// Straight-through run length in cycles.
    pub cycles: u64,
    /// Checkpoints captured and re-verified by resumption.
    pub checkpoints_verified: usize,
}

/// Runs the determinism audit over `workloads` at `scale`, checkpointing
/// roughly every `interval` cycles.
///
/// # Errors
///
/// A divergent resumed run surfaces as
/// [`crisp_sim::SimError::RestoreAuditDivergence`] (wrapped in
/// [`CrispError::Simulation`]); a workload whose run is too short to
/// capture any checkpoint fails the audit with
/// [`CrispError::Checkpoint`] — zero coverage must not read as a pass.
pub fn run_restore_audit(
    workloads: &[String],
    scale: ExperimentScale,
    interval: u64,
) -> Result<Vec<AuditLine>, CrispError> {
    let cfg = scale.pipeline();
    let mut lines = Vec::with_capacity(workloads.len());
    for name in workloads {
        let w = build(name, Input::Ref)?;
        let trace = Emulator::new(&w.program, w.memory.clone()).run(cfg.eval_instructions);
        let mut sim = cfg.sim.clone();
        sim.collect_pc_stats = false;
        // Poll often enough that the requested cadence is honoured even
        // when `interval` undercuts the default poll period.
        if interval < sim.cancel_check_interval {
            sim.cancel_check_interval = interval.max(64);
        }
        let audit = Simulator::try_new(sim)?.audit_restore(&w.program, &trace, None, interval)?;
        if audit.checkpoints_verified == 0 {
            return Err(CrispError::Checkpoint(format!(
                "audit of `{name}` captured no checkpoints over {} cycles; \
                 lower --checkpoint-interval below the run length",
                audit.cycles
            )));
        }
        lines.push(AuditLine {
            workload: name.clone(),
            cycles: audit.cycles,
            checkpoints_verified: audit.checkpoints_verified,
        });
    }
    Ok(lines)
}

/// Renders the audit outcome as the report `--audit-restore` prints.
pub fn render_audit(lines: &[AuditLine]) -> String {
    let mut out = String::from("Checkpoint/restore determinism audit\n\n");
    let total: usize = lines.iter().map(|l| l.checkpoints_verified).sum();
    for l in lines {
        out.push_str(&format!(
            "  {}: {} checkpoint(s) resumed to byte-identical results over {} cycles\n",
            l.workload, l.checkpoints_verified, l.cycles
        ));
    }
    out.push_str(&format!(
        "\nPASS: {total} resumed run(s) across {} workload(s) matched the \
         straight-through results exactly\n",
        lines.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_audit_verifies_checkpoints_for_three_workloads() {
        let workloads: Vec<String> = DEFAULT_AUDIT_WORKLOADS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let lines = run_restore_audit(&workloads, ExperimentScale::Tiny, 10_000)
            .expect("tiny audit passes");
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(
                l.checkpoints_verified >= 1,
                "{}: no checkpoints verified",
                l.workload
            );
        }
        let report = render_audit(&lines);
        assert!(report.contains("PASS"), "{report}");
        assert!(report.contains("pointer_chase"), "{report}");
    }

    #[test]
    fn impossible_interval_fails_instead_of_passing_vacuously() {
        let err = run_restore_audit(
            &["pointer_chase".to_string()],
            ExperimentScale::Tiny,
            u64::MAX,
        )
        .expect_err("no checkpoints must not pass");
        match err {
            CrispError::Checkpoint(m) => assert!(m.contains("captured no checkpoints"), "{m}"),
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
