//! Sweep cells: the unit of supervised execution.
//!
//! Every paper figure decomposes into independent (workload, config)
//! *cells*; each cell is one [`JobSpec`] (`<figure>/<workload>`) whose
//! runner returns a flat `Vec<f64>` payload. The payload layouts are
//! documented on the per-figure cell functions below and are versioned by
//! [`CELL_FORMAT`] — bump it when a layout changes, so `--resume` refuses
//! stale manifests via the spec fingerprint instead of rendering garbage.

use crate::experiments::{figure_workloads, ExperimentScale};
use crisp_core::SchedulerKind;
use crisp_core::{
    build, run_crisp_pipeline, run_ibda_many, ClassifierConfig, ConfigError, CrispError,
    IbdaConfig, Input, PipelineConfig, SimConfig, SliceConfig, SliceMode,
};
use crisp_emu::Emulator;
use crisp_harness::json::Value;
use crisp_harness::{checkpoint_file_name, newest_valid_checkpoint, write_checkpoint};
use crisp_harness::{JobSpec, RunContext};
use crisp_obs::{render_kanata, TelemetrySample, TraceFilter, FIELD_NAMES};
use crisp_sim::{CheckpointSink, PrefetcherSpec, SimResult, Simulator};
use std::path::PathBuf;
use std::sync::Arc;

/// Cell payload-format version, embedded in every job spec.
pub const CELL_FORMAT: &str = "cells-v2";

/// Figure targets that decompose into cells, in report order.
pub const FIGURES: [&str; 10] = [
    "fig1",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "prefzoo",
];

/// Mechanism columns of the `prefzoo` matrix, in payload (and render)
/// order: a no-prefetch control, the Table 1 hardware baseline, the
/// registry competitors, then the two software/criticality mechanisms.
pub const ZOO_MECHS: [&str; 8] = [
    "nopf", "base", "stride", "ghbw", "sisb", "spp", "ibda", "crisp",
];

/// Registry specs behind the pure-hardware `prefzoo` rows.
const ZOO_SPECS: [(&str, &str); 6] = [
    ("nopf", "none"),
    ("base", "bop+stream"),
    ("stride", "stride"),
    ("ghbw", "ghbw"),
    ("sisb", "sisb"),
    ("spp", "spp"),
];

/// The workload subset the ablation studies use (DESIGN.md).
pub(crate) const ABLATION_SUBSET: [&str; 6] =
    ["pointer_chase", "mcf", "lbm", "xhpcg", "namd", "moses"];

/// Workloads a figure sweeps over, in render order.
pub fn cell_workloads(figure: &str) -> Vec<&'static str> {
    match figure {
        "fig1" => vec!["pointer_chase"],
        "ablations" => ABLATION_SUBSET.to_vec(),
        // The cross-mechanism matrix covers the full workload set,
        // including the figure-excluded irregular/frontend-bound apps —
        // those are exactly where the mechanisms separate.
        "prefzoo" => crisp_core::all_names().to_vec(),
        _ => figure_workloads(),
    }
}

/// Builds the job list for one figure, optionally filtered to a workload
/// subset (unknown filter names simply match nothing) and carrying the
/// sweep's `--prefetcher` override, which is part of each cell's spec
/// fingerprint: results computed under different zoos never collide in a
/// manifest or the content-addressed store.
pub fn catalog(
    figure: &str,
    scale: ExperimentScale,
    workloads: Option<&[String]>,
    prefetcher: Option<&PrefetcherSpec>,
) -> Vec<JobSpec> {
    cell_workloads(figure)
        .into_iter()
        .filter(|w| workloads.is_none_or(|f| f.iter().any(|x| x == w)))
        .map(|w| cell_spec_pf(figure, w, scale, prefetcher))
        .collect()
}

/// The [`JobSpec`] for one cell under the default prefetcher zoo.
pub fn cell_spec(figure: &str, workload: &str, scale: ExperimentScale) -> JobSpec {
    cell_spec_pf(figure, workload, scale, None)
}

/// The [`JobSpec`] for one cell, with an optional `--prefetcher` override
/// folded into the spec fingerprint.
pub fn cell_spec_pf(
    figure: &str,
    workload: &str,
    scale: ExperimentScale,
    prefetcher: Option<&PrefetcherSpec>,
) -> JobSpec {
    let id = format!("{figure}/{workload}");
    let pf = prefetcher.map_or_else(String::new, |p| format!(" pf={p}"));
    let spec = format!("{id} scale={scale:?}{pf} {CELL_FORMAT}");
    JobSpec::new(id, spec)
}

/// Splits `<figure>/<workload>` back into its parts.
pub fn split_id(id: &str) -> Option<(&str, &str)> {
    id.split_once('/')
}

/// Threads the attempt's cancellation token and progress beacon (and,
/// under chaos injection, a scheduler freeze that forces a watchdog
/// deadlock) into a simulator config. Every `SimConfig` a cell builds must
/// pass through here, or the deadline and the supervisor's heartbeat
/// monitor would not reach that simulation.
fn arm(sim: &mut SimConfig, ctx: &RunContext, stall: bool) {
    sim.cancel = Some(ctx.cancel.clone());
    sim.progress = Some(ctx.progress.clone());
    if stall {
        sim.freeze_scheduler_after = Some(500);
        sim.watchdog_cycles = 20_000;
    }
}

/// Observability outputs for a cell, derived from `--telemetry` and
/// `--pipe-trace`. Like [`CheckpointPolicy`], it applies to the cells that
/// drive their simulations directly (Figure 1): each sub-run gets one
/// telemetry JSONL stream (plus a top-K stall-attribution table) and one
/// Kanata pipeline trace, keyed by the cell id and sub-run label.
#[derive(Clone, Debug)]
pub struct ObsPolicy {
    /// Directory receiving `<cell>-<label>.jsonl` telemetry streams and
    /// `<cell>-<label>.stalls.txt` stall-attribution tables.
    pub telemetry_dir: Option<PathBuf>,
    /// Cycles between telemetry samples (rounded up to the engine's
    /// cancellation-poll cadence).
    pub telemetry_interval: u64,
    /// Directory receiving `<cell>-<label>.kanata` pipeline traces.
    pub pipe_trace_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity for traced runs.
    pub tracer_capacity: usize,
}

impl ObsPolicy {
    /// A policy with no outputs and the default sampling cadence and
    /// recorder capacity.
    pub fn new() -> ObsPolicy {
        ObsPolicy {
            telemetry_dir: None,
            telemetry_interval: 4096,
            pipe_trace_dir: None,
            tracer_capacity: 1 << 16,
        }
    }
}

impl Default for ObsPolicy {
    fn default() -> ObsPolicy {
        ObsPolicy::new()
    }
}

/// Arms one simulation with the policy's observability collection:
/// interval telemetry and stall attribution under `--telemetry`, the
/// flight recorder under `--pipe-trace`.
fn arm_obs(sim: &mut SimConfig, obs: Option<&ObsPolicy>) {
    let Some(obs) = obs else { return };
    if obs.telemetry_dir.is_some() {
        sim.telemetry_interval = Some(obs.telemetry_interval);
        sim.stall_attribution = true;
    }
    if obs.pipe_trace_dir.is_some() {
        sim.tracer_capacity = Some(obs.tracer_capacity);
    }
}

/// One telemetry sample as a JSONL line, tagged with the cell id and
/// sub-run label so merged streams stay attributable.
fn telemetry_line(cell: &str, label: &str, s: &TelemetrySample) -> String {
    let mut pairs = vec![
        ("cell".to_string(), Value::Str(cell.to_string())),
        ("label".to_string(), Value::Str(label.to_string())),
    ];
    for (name, v) in FIELD_NAMES.iter().zip(s.values()) {
        pairs.push(((*name).to_string(), Value::Num(v as f64)));
    }
    Value::Obj(pairs).encode()
}

/// Writes one sub-run's observability artifacts. Best-effort, like
/// checkpoint emission: a full disk must not kill a healthy simulation,
/// so I/O failures are swallowed.
fn write_obs(obs: Option<&ObsPolicy>, job: &JobSpec, label: &str, res: &SimResult) {
    let Some(obs) = obs else { return };
    let stem = format!("{}-{label}", job.id.replace('/', "-"));
    if let Some(dir) = &obs.telemetry_dir {
        let _ = std::fs::create_dir_all(dir);
        let mut text = String::new();
        for s in res.telemetry.samples() {
            text.push_str(&telemetry_line(&job.id, label, s));
            text.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{stem}.jsonl")), text);
        let _ = std::fs::write(
            dir.join(format!("{stem}.stalls.txt")),
            res.stall_table.render_top_k(16),
        );
    }
    if let Some(dir) = &obs.pipe_trace_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(
            dir.join(format!("{stem}.kanata")),
            render_kanata(&res.tracer.events(), &TraceFilter::default()),
        );
    }
}

/// Mid-run checkpointing policy for a cell, derived from
/// `--checkpoint-interval` and the manifest path.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory holding the sweep's checkpoint files.
    pub dir: PathBuf,
    /// Approximate cycles between checkpoints (rounded up to the engine's
    /// cancellation-poll cadence).
    pub interval: u64,
    /// Under `--resume`, restore each sub-run from its newest valid
    /// checkpoint instead of starting at cycle 0.
    pub resume: bool,
}

/// Arms one of a cell's simulations with checkpoint emission (and, on
/// resume, mid-run restore). `label` distinguishes the cell's sub-runs —
/// their machine states are not interchangeable, so each gets its own
/// file-name key and spec fingerprint.
///
/// Checkpoint writes are best-effort: a full disk must not kill a healthy
/// simulation, and `newest_valid_checkpoint` already tolerates gaps. The
/// *restore* path is strict — a directory that cannot be scanned is a
/// typed [`CrispError::Checkpoint`].
fn arm_checkpoints(
    sim: &mut SimConfig,
    job: &JobSpec,
    policy: Option<&CheckpointPolicy>,
    label: &str,
) -> Result<(), CrispError> {
    let Some(policy) = policy else {
        return Ok(());
    };
    let key = format!("{}@{label}", job.id);
    let spec = format!("{} {label}", job.spec);
    if policy.resume {
        let found = newest_valid_checkpoint(&policy.dir, &key, &spec)
            .map_err(|e| CrispError::Checkpoint(e.to_string()))?;
        if let Some((_, snapshot)) = found {
            sim.restore = Some(Arc::new(snapshot));
        }
    }
    sim.checkpoint_interval = Some(policy.interval);
    let dir = policy.dir.clone();
    sim.checkpoint_sink = Some(CheckpointSink::new(move |snapshot| {
        let path = dir.join(checkpoint_file_name(&key, snapshot.cycle));
        let _ = std::fs::create_dir_all(&dir);
        let _ = write_checkpoint(&path, &spec, snapshot);
    }));
    Ok(())
}

/// Runs one cell to its payload.
///
/// `stall` is the chaos-injection hook (`--inject-stall`): it freezes the
/// scheduler early so the watchdog fires, exercising the deadlock-retry
/// path end to end. `ckpt` enables mid-run checkpoint/restore and `obs`
/// enables telemetry/trace collection for the cells that drive their
/// simulations directly (Figure 1); cells whose simulations run inside
/// the shared pipeline stages resume at the cell boundary via the
/// manifest instead.
///
/// # Errors
///
/// Any pipeline error; a malformed job id is a [`CrispError::Config`]
/// (deterministic, so the supervisor fails it fast).
pub fn run_cell(
    job: &JobSpec,
    ctx: &RunContext,
    scale: ExperimentScale,
    stall: bool,
    ckpt: Option<&CheckpointPolicy>,
    obs: Option<&ObsPolicy>,
    prefetcher: Option<PrefetcherSpec>,
) -> Result<Vec<f64>, CrispError> {
    let (figure, workload) = split_id(&job.id).ok_or_else(|| {
        CrispError::Config(ConfigError::new(
            "cell",
            format!("malformed job id `{}`", job.id),
        ))
    })?;
    let mut cfg = scale.pipeline();
    arm(&mut cfg.sim, ctx, stall);
    if let Some(spec) = prefetcher {
        // The `--prefetcher` axis: every simulation this cell runs —
        // pipeline baselines included — uses the overridden zoo. In
        // `prefzoo` only the `base` reference row tracks the override;
        // the mechanism rows keep their fixed specs.
        cfg.sim.memory.prefetcher = spec;
    }
    match figure {
        "fig1" => cell_fig1(job, workload, &cfg, ckpt, obs),
        "fig4" => cell_fig4(workload, &cfg),
        "fig7" => cell_fig7(workload, &cfg),
        "fig8" => cell_fig8(workload, &cfg),
        "fig9" => cell_fig9(workload, &cfg, ctx, stall),
        "fig10" => cell_fig10(workload, &cfg),
        "fig11" => cell_fig11(workload, &cfg),
        "fig12" => cell_fig12(workload, &cfg),
        "ablations" => cell_ablations(workload, &cfg),
        "prefzoo" => cell_prefzoo(workload, &cfg),
        other => Err(CrispError::Config(ConfigError::new(
            "cell",
            format!("unknown figure `{other}` in job id `{}`", job.id),
        ))),
    }
}

/// Figure 1 payload: `[ooo_ipc, crisp_ipc, speedup_pct, k,
/// ooo_upc[0..k], crisp_upc[0..k]]` (UPC timeline, k buckets).
///
/// The two evaluation simulations are driven directly (not via the shared
/// pipeline), so this is the cell that exercises *mid-run* checkpoint/
/// restore: under a [`CheckpointPolicy`] each sim emits checkpoints keyed
/// by its sub-run label (`ooo` / `crisp`) and, on resume, continues its
/// workload from the newest valid one.
fn cell_fig1(
    job: &JobSpec,
    name: &str,
    cfg: &PipelineConfig,
    ckpt: Option<&CheckpointPolicy>,
    obs: Option<&ObsPolicy>,
) -> Result<Vec<f64>, CrispError> {
    let w = build(name, Input::Ref)?;
    let trace = Emulator::new(&w.program, w.memory.clone()).run(cfg.eval_instructions / 2);

    // Profile + annotate via the pipeline on the train input.
    let pres = run_crisp_pipeline(name, cfg)?;

    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.record_upc_timeline = true;
    sim_cfg.collect_pc_stats = false;
    let mut ooo_cfg = sim_cfg
        .clone()
        .with_scheduler(SchedulerKind::OldestReadyFirst);
    arm_checkpoints(&mut ooo_cfg, job, ckpt, "ooo")?;
    arm_obs(&mut ooo_cfg, obs);
    let ooo = Simulator::try_new(ooo_cfg)?.try_run(&w.program, &trace, None)?;
    write_obs(obs, job, "ooo", &ooo);
    let mut crisp_cfg = sim_cfg.with_scheduler(SchedulerKind::Crisp);
    arm_checkpoints(&mut crisp_cfg, job, ckpt, "crisp")?;
    arm_obs(&mut crisp_cfg, obs);
    let crisp =
        Simulator::try_new(crisp_cfg)?.try_run(&w.program, &trace, Some(pres.map.as_slice()))?;
    write_obs(obs, job, "crisp", &crisp);

    let buckets = 60;
    let ooo_series = ooo.upc.bucketed(buckets);
    let crisp_series = crisp.upc.bucketed(buckets);
    let k = buckets.min(ooo_series.len()).min(crisp_series.len());
    let mut payload = vec![ooo.ipc(), crisp.ipc(), crisp.speedup_over(&ooo), k as f64];
    payload.extend_from_slice(&ooo_series[..k]);
    payload.extend_from_slice(&crisp_series[..k]);
    Ok(payload)
}

/// Figure 4 payload: `[mean_load_slice_len, n_load_slices]`.
fn cell_fig4(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let r = run_crisp_pipeline(name, cfg)?;
    Ok(vec![r.mean_load_slice_len(), r.load_slices.len() as f64])
}

/// Figure 7 payload: `[crisp_pct, ibda_1k_pct, ibda_8k_pct, ibda_64k_pct,
/// ibda_inf_pct]` (IPC improvement over the OOO baseline).
fn cell_fig7(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let r = run_crisp_pipeline(name, cfg)?;
    let base_ipc = r.baseline.ipc();
    let mut payload = vec![r.speedup_pct()];
    let ists = [
        IbdaConfig::ist_1k(),
        IbdaConfig::ist_8k(),
        IbdaConfig::ist_64k(),
        IbdaConfig::ist_infinite(),
    ];
    for ir in run_ibda_many(name, &ists, cfg)? {
        payload.push((ir.result.ipc() / base_ipc - 1.0) * 100.0);
    }
    Ok(payload)
}

/// Figure 8 payload: `[loads_pct, branches_pct, both_pct]`.
fn cell_fig8(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let mut payload = Vec::with_capacity(3);
    for mode in [
        SliceMode::LoadsOnly,
        SliceMode::BranchesOnly,
        SliceMode::Both,
    ] {
        let c = PipelineConfig {
            mode,
            ..cfg.clone()
        };
        let r = run_crisp_pipeline(name, &c)?;
        payload.push(r.speedup_pct());
    }
    Ok(payload)
}

/// Figure 9 payload: `[pct_64_180, pct_96_224, pct_144_336, pct_192_448]`
/// (speedup per RS/ROB window).
fn cell_fig9(
    name: &str,
    cfg: &PipelineConfig,
    ctx: &RunContext,
    stall: bool,
) -> Result<Vec<f64>, CrispError> {
    let windows = [(64usize, 180usize), (96, 224), (144, 336), (192, 448)];
    let mut payload = Vec::with_capacity(windows.len());
    for (rs, rob) in windows {
        // `with_window` builds a fresh SimConfig, so re-arm it.
        let mut sim = SimConfig::with_window(rs, rob);
        arm(&mut sim, ctx, stall);
        let c = PipelineConfig { sim, ..cfg.clone() };
        let r = run_crisp_pipeline(name, &c)?;
        payload.push(r.speedup_pct());
    }
    Ok(payload)
}

/// Figure 10 payload: `[pct_t5, pct_t1, pct_t02]` (miss-contribution
/// threshold sensitivity).
fn cell_fig10(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let mut payload = Vec::with_capacity(3);
    for thr in [0.05, 0.01, 0.002] {
        let c = PipelineConfig {
            classifier: ClassifierConfig::default().with_miss_threshold(thr),
            ..cfg.clone()
        };
        let r = run_crisp_pipeline(name, &c)?;
        payload.push(r.speedup_pct());
    }
    Ok(payload)
}

/// Figure 11 payload: `[critical_inst_count, static_ratio]`.
fn cell_fig11(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let r = run_crisp_pipeline(name, cfg)?;
    Ok(vec![r.map.count() as f64, r.map.static_ratio()])
}

/// Figure 12 payload: `[static_ovh_pct, dynamic_ovh_pct, icache_mpki_base,
/// icache_mpki_crisp]`.
fn cell_fig12(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let r = run_crisp_pipeline(name, cfg)?;
    Ok(vec![
        r.footprint.static_overhead_pct(),
        r.footprint.dynamic_overhead_pct(),
        r.baseline.icache_mpki(),
        r.crisp.icache_mpki(),
    ])
}

/// Ablations payload: `[rand_pct, crisp_pct, reg_only_pct, reg_mem_pct,
/// keep_all_pct, keep_05_pct, keep_09_pct, real_pct, perfect_pct]` —
/// studies A (scheduler policy), B (memory deps), C (keep fraction) and
/// D (perfect branch prediction) for one workload. The reference pipeline
/// run is shared where the legacy code repeated it (identical by
/// determinism).
fn cell_ablations(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    let r = run_crisp_pipeline(name, cfg)?;

    // (a) Scheduler policy: same annotation, random-ready issue policy.
    let eval = build(name, Input::Ref)?;
    let trace = Emulator::new(&eval.program, eval.memory.clone()).run(cfg.eval_instructions);
    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.collect_pc_stats = false;
    let rand = Simulator::try_new(sim_cfg.with_scheduler(SchedulerKind::RandomReady))?.try_run(
        &eval.program,
        &trace,
        Some(r.map.as_slice()),
    )?;
    let rand_pct = (rand.ipc() / r.baseline.ipc() - 1.0) * 100.0;

    // (b) Dependencies through memory in the slicer (the IBDA gap).
    let reg_cfg = PipelineConfig {
        slice: SliceConfig {
            follow_memory_deps: false,
            ..cfg.slice
        },
        ..cfg.clone()
    };
    let reg = run_crisp_pipeline(name, &reg_cfg)?;

    // (c) Critical-path keep fraction (Section 3.5).
    let mut keep = Vec::with_capacity(3);
    for frac in [0.0, 0.5, 0.9] {
        let c = PipelineConfig {
            critical_path_fraction: frac,
            ..cfg.clone()
        };
        keep.push(run_crisp_pipeline(name, &c)?.speedup_pct());
    }

    // (d) Perfect branch prediction (the Section 5.3 discovery experiment).
    let perfect_cfg = PipelineConfig {
        sim: {
            let mut s = cfg.sim.clone();
            s.perfect_branch_prediction = true;
            s
        },
        ..cfg.clone()
    };
    let perfect = run_crisp_pipeline(name, &perfect_cfg)?;

    Ok(vec![
        rand_pct,
        r.speedup_pct(),
        reg.speedup_pct(),
        r.speedup_pct(),
        keep[0],
        keep[1],
        keep[2],
        r.speedup_pct(),
        perfect.speedup_pct(),
    ])
}

/// Prefetcher-zoo payload: [`ZOO_MECHS`]`.len()` blocks of
/// `[ipc, speedup_pct, accuracy, coverage, timeliness, issued, useful,
/// late]`, one per mechanism in [`ZOO_MECHS`] order (64 values).
///
/// Speedup is IPC over the Table 1 `bop+stream` OOO baseline; coverage is
/// the fraction of the `nopf` run's demand-load LLC misses the mechanism
/// eliminated; accuracy and timeliness come from the hierarchy's per-unit
/// issued/useful/late counters. The `ibda` and `crisp` rows run on top of
/// the default hardware prefetchers, so their accuracy/coverage/timeliness
/// describe that baseline zoo under criticality-driven scheduling.
fn cell_prefzoo(name: &str, cfg: &PipelineConfig) -> Result<Vec<f64>, CrispError> {
    // CRISP (and the shared OOO baseline the speedups are against) via the
    // standard pipeline.
    let r = run_crisp_pipeline(name, cfg)?;

    // The pure-hardware rows share one eval trace — the same one the
    // pipeline evaluates on, so the `base` row reproduces `r.baseline`.
    let w = build(name, Input::Ref)?;
    let trace = Emulator::new(&w.program, w.memory.clone()).run(cfg.eval_instructions);
    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.collect_pc_stats = false;

    let mut hw: Vec<SimResult> = Vec::with_capacity(ZOO_SPECS.len());
    for (mech, spec) in ZOO_SPECS {
        let mut c = sim_cfg.clone();
        // `base` is whatever the sweep configured (default `bop+stream`),
        // so it reproduces `r.baseline` and anchors the speedup column.
        c.memory.prefetcher = if mech == "base" {
            cfg.sim.memory.prefetcher
        } else {
            spec.parse().expect("builtin zoo spec")
        };
        hw.push(Simulator::try_new(c)?.try_run(&w.program, &trace, None)?);
    }
    let ibda = run_ibda_many(name, &[IbdaConfig::ist_8k()], cfg)?
        .pop()
        .expect("one IBDA config in, one result out")
        .result;

    let nopf = hw[0].clone();
    let base = &r.baseline;
    let rows: Vec<&SimResult> = hw.iter().chain([&ibda, &r.crisp]).collect();
    let mut payload = Vec::with_capacity(rows.len() * 8);
    for res in rows {
        let t = res.mem.prefetch_totals();
        payload.extend_from_slice(&[
            res.ipc(),
            res.speedup_over(base),
            res.prefetch_accuracy(),
            res.prefetch_coverage_vs(&nopf),
            res.prefetch_timeliness(),
            t.issued as f64,
            t.useful as f64,
            t.late as f64,
        ]);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::{CancelToken, ProgressBeacon};

    fn test_ctx() -> RunContext {
        RunContext {
            attempt: 1,
            cancel: CancelToken::new(),
            progress: ProgressBeacon::new(),
            lease: crisp_harness::LeaseGuard::default(),
        }
    }

    #[test]
    fn catalog_covers_the_expected_grid() {
        assert_eq!(catalog("fig1", ExperimentScale::Fast, None, None).len(), 1);
        assert_eq!(catalog("fig7", ExperimentScale::Fast, None, None).len(), 15);
        assert_eq!(
            catalog("ablations", ExperimentScale::Fast, None, None).len(),
            6
        );
        let filtered = catalog(
            "fig7",
            ExperimentScale::Fast,
            Some(&["mcf".to_string(), "lbm".to_string(), "nope".to_string()]),
            None,
        );
        let ids: Vec<&str> = filtered.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids.len(), 2, "unknown filter names match nothing: {ids:?}");
        assert!(ids.contains(&"fig7/mcf") && ids.contains(&"fig7/lbm"));
    }

    #[test]
    fn specs_fingerprint_scale_and_format() {
        let fast = cell_spec("fig7", "mcf", ExperimentScale::Fast);
        let full = cell_spec("fig7", "mcf", ExperimentScale::Full);
        assert_eq!(fast.id, full.id);
        assert_ne!(fast.fingerprint(), full.fingerprint());
        assert!(fast.spec.contains(CELL_FORMAT));
        assert_eq!(split_id(&fast.id), Some(("fig7", "mcf")));
    }

    #[test]
    fn malformed_ids_are_config_errors() {
        let ctx = test_ctx();
        let bad = JobSpec::new("no-slash", "no-slash spec");
        match run_cell(&bad, &ctx, ExperimentScale::Tiny, false, None, None, None) {
            Err(CrispError::Config(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let unknown = JobSpec::new("fig99/mcf", "fig99/mcf spec");
        match run_cell(
            &unknown,
            &ctx,
            ExperimentScale::Tiny,
            false,
            None,
            None,
            None,
        ) {
            Err(CrispError::Config(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stalled_cell_reports_a_deadlock() {
        let ctx = test_ctx();
        let job = cell_spec("fig11", "mcf", ExperimentScale::Tiny);
        match run_cell(&job, &ctx, ExperimentScale::Tiny, true, None, None, None) {
            Err(CrispError::Simulation(crisp_sim::SimError::Deadlock(_))) => {}
            other => panic!("expected deadlock, got: {other:?}"),
        }
    }

    #[test]
    fn fig1_checkpoints_and_resumes_to_identical_payloads() {
        let dir = std::env::temp_dir().join("crisp-bench-cells-ckpt");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = test_ctx();
        let job = cell_spec("fig1", "pointer_chase", ExperimentScale::Tiny);
        let policy = CheckpointPolicy {
            dir: dir.clone(),
            interval: 1,
            resume: false,
        };
        let reference = run_cell(
            &job,
            &ctx,
            ExperimentScale::Tiny,
            false,
            Some(&policy),
            None,
            None,
        )
        .expect("first run");
        let written: Vec<String> = std::fs::read_dir(&dir)
            .expect("checkpoint dir exists")
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            written
                .iter()
                .any(|n| n.contains("_ooo") && n.ends_with(".ckpt"))
                && written.iter().any(|n| n.contains("_crisp")),
            "both sub-runs checkpoint: {written:?}"
        );

        // Resuming restores each sim mid-workload from its newest valid
        // checkpoint; the payload must be byte-identical regardless.
        let resume = CheckpointPolicy {
            resume: true,
            ..policy
        };
        let resumed = run_cell(
            &job,
            &ctx,
            ExperimentScale::Tiny,
            false,
            Some(&resume),
            None,
            None,
        )
        .expect("resumed run");
        assert_eq!(resumed, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig1_writes_telemetry_stalls_and_kanata_artifacts() {
        let dir = std::env::temp_dir().join("crisp-bench-cells-obs");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = test_ctx();
        let job = cell_spec("fig1", "pointer_chase", ExperimentScale::Tiny);
        let obs = ObsPolicy {
            telemetry_dir: Some(dir.join("telemetry")),
            telemetry_interval: 512,
            pipe_trace_dir: Some(dir.join("traces")),
            tracer_capacity: 1 << 14,
        };
        run_cell(
            &job,
            &ctx,
            ExperimentScale::Tiny,
            false,
            None,
            Some(&obs),
            None,
        )
        .expect("cell run");

        for label in ["ooo", "crisp"] {
            let stem = format!("fig1-pointer_chase-{label}");
            let jsonl =
                std::fs::read_to_string(dir.join("telemetry").join(format!("{stem}.jsonl")))
                    .expect("telemetry stream exists");
            let samples = crisp_obs::parse_jsonl(&jsonl).expect("stream parses");
            assert!(!samples.is_empty(), "{label} sampled at least once");
            assert!(samples[0].interval_cycles >= 512);
            assert!(jsonl.contains("\"cell\":\"fig1/pointer_chase\""));

            let stalls =
                std::fs::read_to_string(dir.join("telemetry").join(format!("{stem}.stalls.txt")))
                    .expect("stall table exists");
            assert!(stalls.contains("pc"), "{stalls}");

            let kanata = std::fs::read_to_string(dir.join("traces").join(format!("{stem}.kanata")))
                .expect("pipeline trace exists");
            assert!(
                kanata.starts_with(crisp_obs::KANATA_HEADER),
                "Kanata header present"
            );
            assert!(kanata.contains("\nR\t"), "at least one retire command");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
