//! One regeneration function per paper table/figure.

use crisp_core::{
    all_names, run_crisp_pipeline, run_ibda_many, ClassifierConfig, CrispError, IbdaConfig,
    PipelineConfig, SimConfig, Table,
};
use crisp_core::{Input, SchedulerKind, SliceConfig};
use crisp_emu::Emulator;
use crisp_sim::Simulator;

fn workload(name: &str) -> Result<crisp_core::Workload, CrispError> {
    crisp_core::build(name, Input::Ref).ok_or_else(|| CrispError::UnknownWorkload(name.to_string()))
}

/// How much simulation to spend per experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small windows — minutes for the whole suite (CI / smoke runs).
    Fast,
    /// The default windows used for EXPERIMENTS.md.
    Full,
}

impl ExperimentScale {
    fn pipeline(self) -> PipelineConfig {
        match self {
            ExperimentScale::Fast => PipelineConfig {
                train_instructions: 120_000,
                eval_instructions: 200_000,
                ..PipelineConfig::paper()
            },
            ExperimentScale::Full => PipelineConfig {
                train_instructions: 400_000,
                eval_instructions: 1_000_000,
                ..PipelineConfig::paper()
            },
        }
    }
}

fn geomean_speedup(speedups_pct: &[f64]) -> f64 {
    if speedups_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = speedups_pct
        .iter()
        .map(|s| (1.0 + s / 100.0).ln())
        .sum::<f64>();
    ((log_sum / speedups_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Workloads used for the headline figures: the paper's evaluated set
/// (the microbenchmark belongs to Figure 1; `omnetpp`/`xalancbmk` are
/// extra kernels outside the paper's evaluation).
fn figure_workloads() -> Vec<&'static str> {
    all_names()
        .iter()
        .copied()
        .filter(|n| !matches!(*n, "pointer_chase" | "omnetpp" | "xalancbmk"))
        .collect()
}

/// **Figure 1** — µops retired per cycle over the pointer-chase
/// microbenchmark, OOO vs CRISP, plus the average-UPC improvement.
pub fn fig1(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let w = workload("pointer_chase")?;
    let trace = Emulator::new(&w.program, w.memory.clone()).run(cfg.eval_instructions / 2);

    // Profile + annotate via the pipeline on the train input.
    let pres = run_crisp_pipeline("pointer_chase", &cfg)?;

    let mut sim_cfg = cfg.sim.clone();
    sim_cfg.record_upc_timeline = true;
    sim_cfg.collect_pc_stats = false;
    let ooo = Simulator::try_new(
        sim_cfg
            .clone()
            .with_scheduler(SchedulerKind::OldestReadyFirst),
    )?
    .try_run(&w.program, &trace, None)?;
    let crisp = Simulator::try_new(sim_cfg.with_scheduler(SchedulerKind::Crisp))?.try_run(
        &w.program,
        &trace,
        Some(pres.map.as_slice()),
    )?;

    let buckets = 60;
    let ooo_series = ooo.upc.bucketed(buckets);
    let crisp_series = crisp.upc.bucketed(buckets);
    let mut t = Table::new(vec!["bucket", "OOO UPC", "CRISP UPC"]);
    for i in 0..buckets.min(ooo_series.len()).min(crisp_series.len()) {
        t.row(vec![
            format!("{i}"),
            format!("{:.2}", ooo_series[i]),
            format!("{:.2}", crisp_series[i]),
        ]);
    }
    Ok(format!(
        "Figure 1: UPC timeline, pointer-chase microbenchmark\n\
         (paper: CRISP improves average UPC by >30% over OOO)\n\n{t}\n\
         average UPC: OOO {:.3}, CRISP {:.3}  =>  {:+.1}%\n",
        ooo.ipc(),
        crisp.ipc(),
        crisp.speedup_over(&ooo)
    ))
}

/// **Figure 4** — average (unfiltered) load-slice size per application.
pub fn fig4(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let mut t = Table::new(vec!["workload", "avg load-slice size", "slices"]);
    for name in figure_workloads() {
        let r = run_crisp_pipeline(name, &cfg)?;
        t.row(vec![
            name.to_string(),
            format!("{:.1}", r.mean_load_slice_len()),
            format!("{}", r.load_slices.len()),
        ]);
    }
    Ok(format!(
        "Figure 4: average dynamic load-slice size (unfiltered backward slices)\n\
         (paper: slices range from a handful to thousands of instructions)\n\n{t}"
    ))
}

/// **Figure 7** — IPC improvement of CRISP and IBDA (1K/8K/64K/∞ IST)
/// over the OOO baseline.
pub fn fig7(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let mut t = Table::new(vec![
        "workload",
        "CRISP %",
        "IBDA-1K %",
        "IBDA-8K %",
        "IBDA-64K %",
        "IBDA-inf %",
    ]);
    let mut crisp_all = Vec::new();
    let mut ibda1k_all = Vec::new();
    for name in figure_workloads() {
        let r = run_crisp_pipeline(name, &cfg)?;
        let base_ipc = r.baseline.ipc();
        let mut cells = vec![name.to_string(), format!("{:+.1}", r.speedup_pct())];
        crisp_all.push(r.speedup_pct());
        let ists = [
            IbdaConfig::ist_1k(),
            IbdaConfig::ist_8k(),
            IbdaConfig::ist_64k(),
            IbdaConfig::ist_infinite(),
        ];
        for (i, ir) in run_ibda_many(name, &ists, &cfg)?.into_iter().enumerate() {
            let pct = (ir.result.ipc() / base_ipc - 1.0) * 100.0;
            if i == 0 {
                ibda1k_all.push(pct);
            }
            cells.push(format!("{pct:+.1}"));
        }
        t.row(cells);
    }
    Ok(format!(
        "Figure 7: IPC improvement over the OOO baseline\n\
         (paper: CRISP +8.4% avg / up to +38%; IBDA far behind, sometimes negative)\n\n{t}\n\
         geomean: CRISP {:+.2}%, IBDA-1K {:+.2}%\n",
        geomean_speedup(&crisp_all),
        geomean_speedup(&ibda1k_all)
    ))
}

/// **Figure 8** — load slices vs branch slices vs both.
pub fn fig8(scale: ExperimentScale) -> Result<String, CrispError> {
    use crisp_core::SliceMode;
    let base_cfg = scale.pipeline();
    let mut t = Table::new(vec!["workload", "loads %", "branches %", "both %"]);
    let mut synergy = Vec::new();
    for name in figure_workloads() {
        let mut cells = vec![name.to_string()];
        let mut pcts = Vec::new();
        for mode in [
            SliceMode::LoadsOnly,
            SliceMode::BranchesOnly,
            SliceMode::Both,
        ] {
            let cfg = PipelineConfig {
                mode,
                ..base_cfg.clone()
            };
            let r = run_crisp_pipeline(name, &cfg)?;
            pcts.push(r.speedup_pct());
            cells.push(format!("{:+.1}", r.speedup_pct()));
        }
        if pcts[2] > pcts[0].max(pcts[1]) + 0.05 {
            synergy.push(name);
        }
        t.row(cells);
    }
    Ok(format!(
        "Figure 8: load slices, branch slices, and their combination\n\
         (paper: several apps benefit from both, combined > either alone)\n\n{t}\n\
         combined beats both individual modes on: {synergy:?}\n"
    ))
}

/// **Figure 9** — RS/ROB size sensitivity: 64/180, 96/224 (Skylake),
/// 144/336 (+50 %), 192/448 (+100 %).
pub fn fig9(scale: ExperimentScale) -> Result<String, CrispError> {
    let base_cfg = scale.pipeline();
    let windows = [(64usize, 180usize), (96, 224), (144, 336), (192, 448)];
    let mut t = Table::new(vec![
        "workload",
        "64/180 %",
        "96/224 %",
        "144/336 %",
        "192/448 %",
    ]);
    for name in figure_workloads() {
        let mut cells = vec![name.to_string()];
        for (rs, rob) in windows {
            let cfg = PipelineConfig {
                sim: SimConfig::with_window(rs, rob),
                ..base_cfg.clone()
            };
            let r = run_crisp_pipeline(name, &cfg)?;
            cells.push(format!("{:+.1}", r.speedup_pct()));
        }
        t.row(cells);
    }
    Ok(format!(
        "Figure 9: CRISP speedup across RS/ROB sizes\n\
         (paper: xhpcg grows with the window, moses peaks at the smallest)\n\n{t}"
    ))
}

/// **Figure 10** — sensitivity to the miss-contribution threshold `T`
/// (5 %, 1 %, 0.2 %).
pub fn fig10(scale: ExperimentScale) -> Result<String, CrispError> {
    let base_cfg = scale.pipeline();
    let mut t = Table::new(vec!["workload", "T=5% %", "T=1% %", "T=0.2% %"]);
    let mut per_threshold = [Vec::new(), Vec::new(), Vec::new()];
    for name in figure_workloads() {
        let mut cells = vec![name.to_string()];
        for (i, thr) in [0.05, 0.01, 0.002].into_iter().enumerate() {
            let cfg = PipelineConfig {
                classifier: ClassifierConfig::default().with_miss_threshold(thr),
                ..base_cfg.clone()
            };
            let r = run_crisp_pipeline(name, &cfg)?;
            per_threshold[i].push(r.speedup_pct());
            cells.push(format!("{:+.1}", r.speedup_pct()));
        }
        t.row(cells);
    }
    Ok(format!(
        "Figure 10: miss-contribution threshold sensitivity\n\
         (paper: T=1% best overall, per-app optima differ)\n\n{t}\n\
         geomeans: T=5% {:+.2}%, T=1% {:+.2}%, T=0.2% {:+.2}%\n",
        geomean_speedup(&per_threshold[0]),
        geomean_speedup(&per_threshold[1]),
        geomean_speedup(&per_threshold[2])
    ))
}

/// **Figure 11** — total number of unique critical instructions.
pub fn fig11(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let mut t = Table::new(vec!["workload", "critical insts", "static ratio %"]);
    for name in figure_workloads() {
        let r = run_crisp_pipeline(name, &cfg)?;
        t.row(vec![
            name.to_string(),
            format!("{}", r.map.count()),
            format!("{:.1}", r.map.static_ratio() * 100.0),
        ]);
    }
    Ok(format!(
        "Figure 11: unique critical (tagged) instructions per application\n\
         (paper: perlbench/gcc/moses exceed 10,000 — beyond any IST)\n\n{t}"
    ))
}

/// **Figure 12** — static and dynamic code-footprint overhead of the
/// one-byte prefix, and the worst-case icache MPKI impact.
pub fn fig12(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let mut t = Table::new(vec![
        "workload",
        "static ovh %",
        "dynamic ovh %",
        "icache MPKI base",
        "icache MPKI CRISP",
    ]);
    let mut dyn_all = Vec::new();
    for name in figure_workloads() {
        let r = run_crisp_pipeline(name, &cfg)?;
        dyn_all.push(r.footprint.dynamic_overhead_pct());
        t.row(vec![
            name.to_string(),
            format!("{:.2}", r.footprint.static_overhead_pct()),
            format!("{:.2}", r.footprint.dynamic_overhead_pct()),
            format!("{:.3}", r.baseline.icache_mpki()),
            format!("{:.3}", r.crisp.icache_mpki()),
        ]);
    }
    let avg = dyn_all.iter().sum::<f64>() / dyn_all.len().max(1) as f64;
    Ok(format!(
        "Figure 12: instruction-prefix footprint overhead\n\
         (paper: ~5.2% dynamic average, worst-case icache MPKI +2.6%)\n\n{t}\n\
         average dynamic overhead: {avg:.2}%\n"
    ))
}

/// **Ablations** — the design-choice studies DESIGN.md calls out:
/// scheduler policy (random / oldest-ready / CRISP), dependencies through
/// memory on/off in the slicer, the critical-path keep fraction, and the
/// Section 5.3 perfect-branch-prediction analysis.
pub fn ablations(scale: ExperimentScale) -> Result<String, CrispError> {
    let cfg = scale.pipeline();
    let subset = ["pointer_chase", "mcf", "lbm", "xhpcg", "namd", "moses"];
    let mut out = String::new();

    // (a) Scheduler policy: same annotation, three issue policies.
    let mut t = Table::new(vec!["workload", "random %", "oldest-first", "CRISP %"]);
    for name in subset {
        let r = run_crisp_pipeline(name, &cfg)?;
        let eval = workload(name)?;
        let trace = Emulator::new(&eval.program, eval.memory.clone()).run(cfg.eval_instructions);
        let mut sim_cfg = cfg.sim.clone();
        sim_cfg.collect_pc_stats = false;
        let rand = Simulator::try_new(sim_cfg.clone().with_scheduler(SchedulerKind::RandomReady))?
            .try_run(&eval.program, &trace, Some(r.map.as_slice()))?;
        let rand_pct = (rand.ipc() / r.baseline.ipc() - 1.0) * 100.0;
        t.row(vec![
            name.to_string(),
            format!("{rand_pct:+.1}"),
            "+0.0 (ref)".to_string(),
            format!("{:+.1}", r.speedup_pct()),
        ]);
    }
    out.push_str(&format!(
        "Ablation A: scheduler policy (speedup vs oldest-ready-first)\n\n{t}\n"
    ));

    // (b) Dependencies through memory in the slicer (the IBDA gap).
    let mut t = Table::new(vec!["workload", "reg-only %", "reg+mem %"]);
    for name in subset {
        let full = run_crisp_pipeline(name, &cfg)?;
        let reg_cfg = PipelineConfig {
            slice: SliceConfig {
                follow_memory_deps: false,
                ..cfg.slice
            },
            ..cfg.clone()
        };
        let reg = run_crisp_pipeline(name, &reg_cfg)?;
        t.row(vec![
            name.to_string(),
            format!("{:+.1}", reg.speedup_pct()),
            format!("{:+.1}", full.speedup_pct()),
        ]);
    }
    out.push_str(&format!(
        "Ablation B: slicing through memory (Section 3.3; namd is the showcase)\n\n{t}\n"
    ));

    // (c) Critical-path keep fraction (Section 3.5).
    let mut t = Table::new(vec!["workload", "keep all %", "keep 0.5 %", "keep 0.9 %"]);
    for name in subset {
        let mut cells = vec![name.to_string()];
        for frac in [0.0, 0.5, 0.9] {
            let c = PipelineConfig {
                critical_path_fraction: frac,
                ..cfg.clone()
            };
            let r = run_crisp_pipeline(name, &c)?;
            cells.push(format!("{:+.1}", r.speedup_pct()));
        }
        t.row(cells);
    }
    out.push_str(&format!(
        "Ablation C: critical-path filtering fraction (Section 3.5)\n\n{t}\n"
    ));

    // (d) Perfect branch prediction (the Section 5.3 discovery experiment).
    let mut t = Table::new(vec![
        "workload",
        "CRISP gain %",
        "CRISP gain @ perfect BP %",
    ]);
    for name in subset {
        let real = run_crisp_pipeline(name, &cfg)?;
        let perfect_cfg = PipelineConfig {
            sim: {
                let mut s = cfg.sim.clone();
                s.perfect_branch_prediction = true;
                s
            },
            ..cfg.clone()
        };
        let perfect = run_crisp_pipeline(name, &perfect_cfg)?;
        t.row(vec![
            name.to_string(),
            format!("{:+.1}", real.speedup_pct()),
            format!("{:+.1}", perfect.speedup_pct()),
        ]);
    }
    out.push_str(&format!(
        "Ablation D: perfect branch prediction (Section 5.3: load-slice \
         benefit grows when mispredicts vanish)\n\n{t}"
    ));
    Ok(out)
}

/// **Table 1** — the simulated system.
pub fn table1() -> String {
    let sim = SimConfig::skylake();
    let mem = &sim.memory;
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("CPU model", "Skylake-like (paper Table 1)".into()),
        (
            "Frontend width / retirement",
            format!("{}-way", sim.fetch_width),
        ),
        (
            "Functional units",
            format!(
                "{} ALU, {} load, {} store",
                sim.alu_ports, sim.load_ports, sim.store_ports
            ),
        ),
        (
            "Branch predictor",
            "TAGE (6 tagged tables, 640b history)".into(),
        ),
        ("BTB", "8K entries, 4-way".into()),
        ("ROB", format!("{} entries", sim.rob_entries)),
        (
            "Reservation station",
            format!("{} entries (unified)", sim.rs_entries),
        ),
        (
            "Baseline scheduler",
            "6-oldest-ready-instructions-first".into(),
        ),
        ("Data prefetcher", "BOP + Stream".into()),
        (
            "Instruction prefetcher",
            format!("FDIP, {} FTQ entries", sim.ftq_entries),
        ),
        ("Load buffer", format!("{} entries", sim.load_buffer)),
        ("Store buffer", format!("{} entries", sim.store_buffer)),
        (
            "L1 I-cache",
            format!(
                "{} KiB, {}-way, {} cycles",
                mem.l1i.capacity / 1024,
                mem.l1i.ways,
                mem.l1i_latency
            ),
        ),
        (
            "L1 D-cache",
            format!(
                "{} KiB, {}-way, {} cycles",
                mem.l1d.capacity / 1024,
                mem.l1d.ways,
                mem.l1d_latency
            ),
        ),
        (
            "LLC",
            format!(
                "{} MiB, {}-way, {} cycles (paper: 20-way)",
                mem.llc.capacity / (1024 * 1024),
                mem.llc.ways,
                mem.llc_latency
            ),
        ),
        (
            "Memory",
            format!(
                "DDR4-2400, 1 channel, {} banks, tRCD/tRP/tCL = {}/{}/{} core cycles",
                mem.dram.banks, mem.dram.t_rcd, mem.dram.t_rp, mem.dram.t_cl
            ),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    format!("Table 1: simulated system\n\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_structures() {
        let s = table1();
        for needle in ["224", "96", "TAGE", "BOP", "FDIP", "DDR4"] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }

    #[test]
    fn geomean_of_speedups() {
        assert_eq!(geomean_speedup(&[]), 0.0);
        let g = geomean_speedup(&[10.0, 10.0]);
        assert!((g - 10.0).abs() < 1e-9);
        let g2 = geomean_speedup(&[0.0, 21.0]);
        assert!(g2 > 9.0 && g2 < 11.0);
    }

    #[test]
    fn figure_workload_list_excludes_microbenchmark() {
        let l = figure_workloads();
        assert!(!l.contains(&"pointer_chase"));
        assert_eq!(l.len(), 15);
    }
}
