//! One regeneration function per paper table/figure.
//!
//! Each figure decomposes into independent (workload, config) cells (see
//! [`crate::cells`]); the functions here run those cells *serially and
//! fail-fast* — the legacy path the `figures` binary uses — and render
//! through the same [`crate::render`] code as the supervised `crisp-bench`
//! sweep, so both entry points produce identical reports.

use crate::cells;
use crate::render::render_figure;
use crisp_core::{CrispError, PipelineConfig, SimConfig, Table};
use crisp_harness::{JobOutcome, RunContext};
use crisp_sim::CancelToken;
use std::collections::BTreeMap;

/// How much simulation to spend per experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minimal windows — seconds per figure (integration tests, chaos
    /// smoke runs; too small for meaningful numbers).
    Tiny,
    /// Small windows — minutes for the whole suite (CI / smoke runs).
    Fast,
    /// The default windows used for EXPERIMENTS.md.
    Full,
}

impl ExperimentScale {
    pub(crate) fn pipeline(self) -> PipelineConfig {
        match self {
            ExperimentScale::Tiny => PipelineConfig {
                train_instructions: 40_000,
                eval_instructions: 60_000,
                ..PipelineConfig::paper()
            },
            ExperimentScale::Fast => PipelineConfig {
                train_instructions: 120_000,
                eval_instructions: 200_000,
                ..PipelineConfig::paper()
            },
            ExperimentScale::Full => PipelineConfig {
                train_instructions: 400_000,
                eval_instructions: 1_000_000,
                ..PipelineConfig::paper()
            },
        }
    }
}

pub(crate) fn geomean_speedup(speedups_pct: &[f64]) -> f64 {
    if speedups_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = speedups_pct
        .iter()
        .map(|s| (1.0 + s / 100.0).ln())
        .sum::<f64>();
    ((log_sum / speedups_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Workloads used for the headline figures: the paper's evaluated set
/// (the microbenchmark belongs to Figure 1; `omnetpp`/`xalancbmk` are
/// extra kernels outside the paper's evaluation).
pub(crate) fn figure_workloads() -> Vec<&'static str> {
    crisp_core::all_names()
        .iter()
        .copied()
        .filter(|n| !matches!(*n, "pointer_chase" | "omnetpp" | "xalancbmk"))
        .collect()
}

/// Runs one figure's cells serially (fail-fast) and renders the report.
fn figure_report(figure: &str, scale: ExperimentScale) -> Result<String, CrispError> {
    let cell_list = cells::catalog(figure, scale, None, None);
    let mut outcomes = BTreeMap::new();
    for job in &cell_list {
        let ctx = RunContext {
            attempt: 1,
            cancel: CancelToken::new(),
            progress: crisp_sim::ProgressBeacon::new(),
            lease: crisp_harness::LeaseGuard::default(),
        };
        let payload = cells::run_cell(job, &ctx, scale, false, None, None, None)?;
        outcomes.insert(
            job.id.clone(),
            JobOutcome::Completed {
                payload,
                attempts: 1,
                resumed: false,
                cached: false,
            },
        );
    }
    Ok(render_figure(figure, &cell_list, &outcomes))
}

/// **Figure 1** — µops retired per cycle over the pointer-chase
/// microbenchmark, OOO vs CRISP, plus the average-UPC improvement.
pub fn fig1(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig1", scale)
}

/// **Figure 4** — average (unfiltered) load-slice size per application.
pub fn fig4(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig4", scale)
}

/// **Figure 7** — IPC improvement of CRISP and IBDA (1K/8K/64K/∞ IST)
/// over the OOO baseline.
pub fn fig7(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig7", scale)
}

/// **Figure 8** — load slices vs branch slices vs both.
pub fn fig8(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig8", scale)
}

/// **Figure 9** — RS/ROB size sensitivity: 64/180, 96/224 (Skylake),
/// 144/336 (+50 %), 192/448 (+100 %).
pub fn fig9(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig9", scale)
}

/// **Figure 10** — sensitivity to the miss-contribution threshold `T`
/// (5 %, 1 %, 0.2 %).
pub fn fig10(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig10", scale)
}

/// **Figure 11** — total number of unique critical instructions.
pub fn fig11(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig11", scale)
}

/// **Figure 12** — static and dynamic code-footprint overhead of the
/// one-byte prefix, and the worst-case icache MPKI impact.
pub fn fig12(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("fig12", scale)
}

/// **Ablations** — the design-choice studies DESIGN.md calls out:
/// scheduler policy (random / oldest-ready / CRISP), dependencies through
/// memory on/off in the slicer, the critical-path keep fraction, and the
/// Section 5.3 perfect-branch-prediction analysis.
pub fn ablations(scale: ExperimentScale) -> Result<String, CrispError> {
    figure_report("ablations", scale)
}

/// **Table 1** — the simulated system.
pub fn table1() -> String {
    let sim = SimConfig::skylake();
    let mem = &sim.memory;
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("CPU model", "Skylake-like (paper Table 1)".into()),
        (
            "Frontend width / retirement",
            format!("{}-way", sim.fetch_width),
        ),
        (
            "Functional units",
            format!(
                "{} ALU, {} load, {} store",
                sim.alu_ports, sim.load_ports, sim.store_ports
            ),
        ),
        (
            "Branch predictor",
            "TAGE (6 tagged tables, 640b history)".into(),
        ),
        ("BTB", "8K entries, 4-way".into()),
        ("ROB", format!("{} entries", sim.rob_entries)),
        (
            "Reservation station",
            format!("{} entries (unified)", sim.rs_entries),
        ),
        (
            "Baseline scheduler",
            "6-oldest-ready-instructions-first".into(),
        ),
        ("Data prefetcher", "BOP + Stream".into()),
        (
            "Instruction prefetcher",
            format!("FDIP, {} FTQ entries", sim.ftq_entries),
        ),
        ("Load buffer", format!("{} entries", sim.load_buffer)),
        ("Store buffer", format!("{} entries", sim.store_buffer)),
        (
            "L1 I-cache",
            format!(
                "{} KiB, {}-way, {} cycles",
                mem.l1i.capacity / 1024,
                mem.l1i.ways,
                mem.l1i_latency
            ),
        ),
        (
            "L1 D-cache",
            format!(
                "{} KiB, {}-way, {} cycles",
                mem.l1d.capacity / 1024,
                mem.l1d.ways,
                mem.l1d_latency
            ),
        ),
        (
            "LLC",
            format!(
                "{} MiB, {}-way, {} cycles (paper: 20-way)",
                mem.llc.capacity / (1024 * 1024),
                mem.llc.ways,
                mem.llc_latency
            ),
        ),
        (
            "Memory",
            format!(
                "DDR4-2400, 1 channel, {} banks, tRCD/tRP/tCL = {}/{}/{} core cycles",
                mem.dram.banks, mem.dram.t_rcd, mem.dram.t_rp, mem.dram.t_cl
            ),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    format!("Table 1: simulated system\n\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_structures() {
        let s = table1();
        for needle in ["224", "96", "TAGE", "BOP", "FDIP", "DDR4"] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }

    #[test]
    fn geomean_of_speedups() {
        assert_eq!(geomean_speedup(&[]), 0.0);
        let g = geomean_speedup(&[10.0, 10.0]);
        assert!((g - 10.0).abs() < 1e-9);
        let g2 = geomean_speedup(&[0.0, 21.0]);
        assert!(g2 > 9.0 && g2 < 11.0);
    }

    #[test]
    fn figure_workload_list_excludes_microbenchmark() {
        let l = figure_workloads();
        assert!(!l.contains(&"pointer_chase"));
        assert_eq!(l.len(), 15);
    }

    #[test]
    fn tiny_scale_is_smaller_than_fast() {
        let t = ExperimentScale::Tiny.pipeline();
        let f = ExperimentScale::Fast.pipeline();
        assert!(t.train_instructions < f.train_instructions);
        assert!(t.eval_instructions < f.eval_instructions);
        assert!(t.validate().is_ok());
    }
}
