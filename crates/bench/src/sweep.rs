//! The supervised sweep: figures × workloads on the crisp-harness
//! worker pool, with chaos injection for testing the robustness paths.

use crate::cells::{self, CheckpointPolicy, ObsPolicy, CELL_FORMAT, FIGURES};
use crate::experiments::{table1, ExperimentScale};
use crate::render::render_figure;
use crisp_harness::json::Value;
use crisp_harness::{
    run_sweep, EventSink, FailureClass, HarnessError, JobSpec, RetryPolicy, RunContext, RunError,
    SupervisorOptions, SweepReport, WorkerPool,
};
use crisp_sim::{AbortReason, CancelToken, PrefetcherSpec, SimError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault injection applied by the sweep runner (CI smoke + tests).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Chaos {
    /// Job-id substrings whose first attempt panics (`--inject-panic`);
    /// retries succeed, exercising the backoff path.
    pub panic_once: Vec<String>,
    /// Job-id substrings whose every attempt freezes the scheduler so the
    /// watchdog fires (`--inject-stall`); retries keep failing, exercising
    /// retry exhaustion and degraded salvage.
    pub stall: Vec<String>,
}

impl Chaos {
    /// Whether any injection is configured.
    pub fn is_active(&self) -> bool {
        !self.panic_once.is_empty() || !self.stall.is_empty()
    }
}

/// Everything one `crisp-bench` invocation needs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Simulation scale.
    pub scale: ExperimentScale,
    /// Report targets, in render order (figure names and/or `table1`).
    pub targets: Vec<String>,
    /// Optional workload filter applied to every figure.
    pub workloads: Option<Vec<String>>,
    /// `--prefetcher NAME[:k=v,…][+…]`: override the data-prefetcher
    /// selection for every cell's simulations. Part of the sweep spec and
    /// of each cell's fingerprint, so manifests and the result store keep
    /// per-zoo results separate.
    pub prefetcher: Option<PrefetcherSpec>,
    /// Worker threads.
    pub workers: usize,
    /// Per-attempt wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Retry schedule.
    pub retry: RetryPolicy,
    /// JSONL manifest path.
    pub manifest: Option<PathBuf>,
    /// Resume from the manifest instead of starting fresh.
    pub resume: bool,
    /// Fault injection.
    pub chaos: Chaos,
    /// Emit per-job progress lines on stderr.
    pub progress: bool,
    /// Mid-run checkpointing: cells that drive simulations directly emit
    /// an integrity-checked machine snapshot roughly every this many
    /// cycles into [`checkpoint_dir`] next to the manifest, and `--resume`
    /// continues them mid-workload. Requires a manifest path.
    pub checkpoint_interval: Option<u64>,
    /// Run the checkpoint/restore determinism audit instead of the sweep
    /// (`--audit-restore`; see [`crate::audit`]).
    pub audit_restore: bool,
    /// Test hook: simulate a SIGKILL after this many journal records.
    pub crash_after_records: Option<usize>,
    /// `--telemetry DIR`: cells that drive simulations directly write one
    /// interval-telemetry JSONL stream (plus a top-K stall-attribution
    /// table) per sub-run into this directory.
    pub telemetry: Option<PathBuf>,
    /// `--pipe-trace DIR`: those cells also write one Kanata pipeline
    /// trace per sub-run into this directory.
    pub pipe_trace: Option<PathBuf>,
    /// `--heartbeat MS`: the supervisor journals each running cell's
    /// progress (cycles, instructions, wall-clock) at this cadence.
    pub heartbeat: Option<Duration>,
    /// `--store DIR`: content-addressed result store; verified entries
    /// skip simulation, computed cells are published for later sweeps.
    pub store: Option<PathBuf>,
    /// Sweep-wide stop token for graceful shutdown (SIGTERM/SIGINT):
    /// when cancelled, in-flight cells abort cooperatively, queued cells
    /// stay unrecorded, and `--resume` completes the sweep later.
    pub stop: Option<CancelToken>,
    /// Test hook (`--cell-delay-ms`): every computed cell first idles
    /// this long while polling its cancel token, widening the mid-cell
    /// window that chaos tests (SIGKILL, drain) need to hit reliably.
    pub cell_delay: Option<Duration>,
    /// `--workers N` on `crisp-serve`: dispatch every computed cell to
    /// this multi-process [`WorkerPool`] instead of simulating in-process.
    /// Workers inherit `cell_delay` and the chaos stall flags; mid-cell
    /// checkpoints and telemetry sinks are in-process features and are
    /// skipped (the pool's unit of recovery is the whole cell). In pool
    /// mode `chaos.panic_once` aborts the worker process on *every*
    /// attempt, exercising the poison-quarantine path.
    pub pool: Option<Arc<WorkerPool>>,
    /// Live event sink threaded into the supervisor (cell started /
    /// heartbeat / retry / degraded / done), feeding `GET /jobs/ID/events`.
    pub events: Option<EventSink>,
    /// Cross-process span scope threaded into the supervisor and, in
    /// pool mode, down to the worker processes (each cell's `simulate`
    /// span carries the worker's pid), feeding `crisp obs spans`.
    pub spans: Option<crisp_harness::SpanScope>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            scale: ExperimentScale::Full,
            targets: all_targets(),
            workloads: None,
            prefetcher: None,
            workers: 1,
            deadline: None,
            retry: RetryPolicy::default(),
            manifest: None,
            resume: false,
            chaos: Chaos::default(),
            progress: false,
            checkpoint_interval: None,
            audit_restore: false,
            crash_after_records: None,
            telemetry: None,
            pipe_trace: None,
            heartbeat: None,
            store: None,
            stop: None,
            cell_delay: None,
            pool: None,
            events: None,
            spans: None,
        }
    }
}

/// Where a sweep journaling to `manifest` keeps its checkpoint files: a
/// sibling directory, so `--resume <manifest>` finds both halves of the
/// crash state without extra flags.
pub fn checkpoint_dir(manifest: &Path) -> PathBuf {
    let mut name = manifest.file_name().unwrap_or_default().to_os_string();
    name.push(".ckpt.d");
    manifest.with_file_name(name)
}

/// Every target, in canonical render order (`table1` first).
pub fn all_targets() -> Vec<String> {
    std::iter::once("table1")
        .chain(FIGURES)
        .map(str::to_string)
        .collect()
}

/// The sweep-level spec recorded in the manifest header. Anything that
/// changes cell payloads (scale, cell format) or the job set (targets,
/// workload filter) is part of it, so `--resume` under different flags is
/// rejected instead of silently mixing sweeps.
pub fn sweep_spec(cfg: &SweepConfig) -> String {
    format!(
        "crisp-bench scale={:?} targets=[{}] workloads=[{}] prefetcher={} {CELL_FORMAT}",
        cfg.scale,
        cfg.targets.join(","),
        cfg.workloads
            .as_ref()
            .map_or_else(|| "all".to_string(), |w| w.join(",")),
        cfg.prefetcher
            .as_ref()
            .map_or_else(|| "default".to_string(), |p| p.to_string()),
    )
}

/// What a supervised sweep produced.
#[derive(Clone, Debug)]
pub struct SweepOutput {
    /// The supervisor's report (outcomes, crash flag, resume stats).
    pub report: SweepReport,
    /// The rendered reports, in target order — empty if the sweep crashed.
    pub rendered: String,
}

impl SweepOutput {
    /// Whether the sweep completed but with failed cells (exit code 6).
    pub fn degraded(&self) -> bool {
        !self.report.crashed && self.report.degraded()
    }

    /// Whether any permanent failure was checkpoint-class — torn/
    /// mismatched checkpoint state that no retry can fix (exit code 7).
    pub fn checkpoint_failures(&self) -> bool {
        self.report
            .taxonomy()
            .iter()
            .any(|(class, _)| *class == FailureClass::Checkpoint)
    }
}

/// Builds the full job list for a sweep config.
pub fn build_jobs(cfg: &SweepConfig) -> Vec<JobSpec> {
    cfg.targets
        .iter()
        .filter(|t| t.as_str() != "table1")
        .flat_map(|t| {
            cells::catalog(
                t,
                cfg.scale,
                cfg.workloads.as_deref(),
                cfg.prefetcher.as_ref(),
            )
        })
        .collect()
}

/// Runs the sweep under the supervisor and renders every target.
///
/// # Errors
///
/// Supervisor-level failures only ([`HarnessError`]); failed cells are
/// salvaged into degraded reports, not errors.
pub fn run_supervised_sweep(cfg: &SweepConfig) -> Result<SweepOutput, HarnessError> {
    let jobs = build_jobs(cfg);
    let opts = SupervisorOptions {
        workers: cfg.workers,
        deadline: cfg.deadline,
        retry: cfg.retry,
        manifest: cfg.manifest.clone(),
        resume: cfg.resume,
        sweep_spec: sweep_spec(cfg),
        crash_after_records: cfg.crash_after_records,
        progress: cfg.progress,
        heartbeat: cfg.heartbeat,
        store: cfg
            .store
            .as_ref()
            .map(crisp_harness::ResultStoreConfig::new),
        stop: cfg.stop.clone(),
        fail_journal_appends: 0,
        events: cfg.events.clone(),
        spans: cfg.spans.clone(),
    };
    let chaos = cfg.chaos.clone();
    let scale = cfg.scale;
    let scale_name = match scale {
        ExperimentScale::Tiny => "tiny",
        ExperimentScale::Fast => "fast",
        ExperimentScale::Full => "full",
    };
    let pool = cfg.pool.clone();
    let ckpt = cfg.checkpoint_interval.and_then(|interval| {
        cfg.manifest.as_ref().map(|m| CheckpointPolicy {
            dir: checkpoint_dir(m),
            interval,
            resume: cfg.resume,
        })
    });
    let obs = (cfg.telemetry.is_some() || cfg.pipe_trace.is_some()).then(|| ObsPolicy {
        telemetry_dir: cfg.telemetry.clone(),
        pipe_trace_dir: cfg.pipe_trace.clone(),
        ..ObsPolicy::new()
    });
    let cell_delay = cfg.cell_delay;
    let spans = cfg.spans.clone();
    let prefetcher = cfg.prefetcher;
    let runner = move |job: &JobSpec, ctx: &RunContext| -> Result<Vec<f64>, RunError> {
        let stall = chaos.stall.iter().any(|s| job.id.contains(s.as_str()));
        if let Some(pool) = pool.as_deref() {
            // Multi-process path: ship the cell to a pooled crisp-worker.
            // panic_once cells abort the worker on every attempt — after
            // enough consecutive crashes the pool quarantines the cell.
            let abort = chaos.panic_once.iter().any(|s| job.id.contains(s.as_str()));
            let mut extra = vec![("scale".to_string(), Value::Str(scale_name.to_string()))];
            if let Some(p) = &prefetcher {
                extra.push(("prefetcher".to_string(), Value::Str(p.to_string())));
            }
            if stall {
                extra.push(("stall".to_string(), Value::Bool(true)));
            }
            if abort {
                extra.push(("abort".to_string(), Value::Bool(true)));
            }
            if let Some(delay) = cell_delay {
                extra.push((
                    "cell_delay_ms".to_string(),
                    Value::Num(delay.as_millis() as f64),
                ));
            }
            if let Some(scope) = &spans {
                // The worker re-derives the supervisor's cell-span id
                // from (trace, name) and parents its simulate span on
                // it. Ids ride as hex strings — u64 overflows the JSON
                // subset's f64 numbers.
                let parent = crisp_harness::span_id(
                    &scope.trace,
                    &format!("cell {}#{}", job.id, ctx.attempt),
                );
                extra.push(("trace".to_string(), Value::Str(scope.trace.clone())));
                extra.push((
                    "span_path".to_string(),
                    Value::Str(scope.path.display().to_string()),
                ));
                extra.push((
                    "span_parent".to_string(),
                    Value::Str(format!("{parent:016x}")),
                ));
            }
            return pool.run_cell(&job.id, &job.spec, ctx, &Value::Obj(extra));
        }
        if let Some(delay) = cell_delay {
            // Idle cooperatively before simulating, so chaos tests get a
            // wide, interruptible mid-cell window.
            let until = Instant::now() + delay;
            while Instant::now() < until {
                if let Some(reason) = ctx.cancel.should_abort() {
                    return Err(crisp_core::CrispError::Simulation(match reason {
                        AbortReason::Cancelled => SimError::Cancelled {
                            cycle: 0,
                            retired: 0,
                            total: 0,
                        },
                        AbortReason::DeadlineExceeded => SimError::DeadlineExceeded {
                            cycle: 0,
                            retired: 0,
                            total: 0,
                        },
                    })
                    .into());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        if ctx.attempt == 1 && chaos.panic_once.iter().any(|s| job.id.contains(s.as_str())) {
            panic!("injected fault: chaos panic for {}", job.id);
        }
        cells::run_cell(
            job,
            ctx,
            scale,
            stall,
            ckpt.as_ref(),
            obs.as_ref(),
            prefetcher,
        )
        .map_err(RunError::from)
    };
    let report = run_sweep(&jobs, &opts, &runner)?;

    let mut rendered = String::new();
    if !report.crashed && !report.interrupted {
        for target in &cfg.targets {
            let body = if target == "table1" {
                table1()
            } else {
                let cell_list = cells::catalog(
                    target,
                    cfg.scale,
                    cfg.workloads.as_deref(),
                    cfg.prefetcher.as_ref(),
                );
                render_figure(target, &cell_list, &report.outcomes)
            };
            // Matches the legacy binary's `println!("{report}\n")` spacing.
            rendered.push_str(&body);
            rendered.push_str("\n\n");
        }
    }
    Ok(SweepOutput { report, rendered })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            scale: ExperimentScale::Tiny,
            targets: vec!["fig11".to_string()],
            workloads: Some(vec!["mcf".to_string(), "lbm".to_string()]),
            workers: 2,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn checkpoint_dir_is_a_manifest_sibling() {
        assert_eq!(
            checkpoint_dir(Path::new("/runs/sweep.jsonl")),
            PathBuf::from("/runs/sweep.jsonl.ckpt.d")
        );
    }

    #[test]
    fn sweep_spec_pins_scale_targets_and_filter() {
        let a = sweep_spec(&tiny_cfg());
        assert!(
            a.contains("Tiny") && a.contains("fig11") && a.contains("mcf,lbm"),
            "{a}"
        );
        let mut full = tiny_cfg();
        full.scale = ExperimentScale::Fast;
        assert_ne!(a, sweep_spec(&full));
    }

    #[test]
    fn build_jobs_skips_table1_and_applies_the_filter() {
        let mut cfg = tiny_cfg();
        cfg.targets = vec![
            "table1".to_string(),
            "fig11".to_string(),
            "fig4".to_string(),
        ];
        let jobs = build_jobs(&cfg);
        assert_eq!(jobs.len(), 4, "2 figures x 2 workloads: {jobs:?}");
        assert!(jobs.iter().all(|j| !j.id.starts_with("table1")));
    }

    #[test]
    fn tiny_supervised_sweep_completes_and_renders() {
        let out = run_supervised_sweep(&tiny_cfg()).expect("no supervisor error");
        assert!(!out.report.crashed);
        assert!(!out.degraded(), "outcomes: {:?}", out.report.outcomes);
        assert_eq!(out.report.completed(), 2);
        assert!(out.rendered.contains("Figure 11"));
        assert!(!out.rendered.contains("DEGRADED"));
    }

    #[test]
    fn injected_stall_degrades_without_killing_the_sweep() {
        let mut cfg = tiny_cfg();
        cfg.chaos.stall = vec!["fig11/lbm".to_string()];
        cfg.retry = RetryPolicy {
            max_retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let out = run_supervised_sweep(&cfg).expect("no supervisor error");
        assert!(out.degraded());
        assert_eq!(out.report.completed(), 1);
        assert!(
            out.rendered.contains("[DEGRADED (1/2 workloads)]"),
            "{}",
            out.rendered
        );
        assert!(out.rendered.contains("deadlock"), "{}", out.rendered);
    }
}
