//! Renders figure reports from cell payloads.
//!
//! Rendering is a pure function of the (ordered) cell list and the
//! outcome map, so a resumed sweep — whose payloads come from the JSONL
//! manifest instead of fresh runs — produces byte-identical tables. When
//! every cell completed, the output is exactly the pre-supervisor report;
//! failed cells degrade to `-` rows, a `[DEGRADED (k/n workloads)]` title
//! annotation, and a failure-taxonomy block listing what broke and why.

use crate::cells;
use crate::experiments::geomean_speedup;
use crisp_core::{Coverage, Table};
use crisp_harness::json::Value;
use crisp_harness::{JobOutcome, JobSpec};
use std::collections::BTreeMap;

/// One cell as the renderer sees it.
struct CellView<'a> {
    workload: &'a str,
    /// `Some` iff the cell completed.
    payload: Option<&'a [f64]>,
    /// `(class, attempts, error)` for permanent failures; also synthesized
    /// for cells with no outcome at all (sweep crashed before they ran).
    failure: Option<(String, u32, String)>,
    /// Structured failure record (deadlock report, panic payload,
    /// checkpoint diagnostics) persisted in the manifest, if any.
    detail: Option<&'a Value>,
}

fn views<'a>(
    cells: &'a [JobSpec],
    outcomes: &'a BTreeMap<String, JobOutcome>,
) -> Vec<CellView<'a>> {
    cells
        .iter()
        .map(|job| {
            let workload = cells::split_id(&job.id).map_or(job.id.as_str(), |(_, w)| w);
            match outcomes.get(&job.id) {
                Some(JobOutcome::Completed { payload, .. }) => CellView {
                    workload,
                    payload: Some(payload),
                    failure: None,
                    detail: None,
                },
                Some(JobOutcome::Failed {
                    class,
                    error,
                    attempts,
                    detail,
                }) => CellView {
                    workload,
                    payload: None,
                    failure: Some((class.to_string(), *attempts, error.clone())),
                    detail: detail.as_ref(),
                },
                None => CellView {
                    workload,
                    payload: None,
                    failure: Some((
                        "incomplete".to_string(),
                        0,
                        "sweep stopped before this cell ran".to_string(),
                    )),
                    detail: None,
                },
            }
        })
        .collect()
}

/// Flattens a structured failure record to `key=value` pairs for the
/// taxonomy block — the manifest's evidence, cited next to the summary
/// line so a DEGRADED table explains itself without the JSONL in hand.
fn detail_citation(detail: &Value) -> String {
    match detail {
        Value::Obj(pairs) => pairs
            .iter()
            .filter(|(k, _)| k != "kind")
            .map(|(k, v)| match v {
                Value::Str(s) => format!("{k}={s}"),
                other => format!("{k}={}", other.encode()),
            })
            .collect::<Vec<String>>()
            .join(" "),
        other => other.encode(),
    }
}

fn coverage(views: &[CellView<'_>]) -> Coverage {
    Coverage::new(
        views.iter().filter(|v| v.payload.is_some()).count(),
        views.len(),
    )
}

/// The failure-taxonomy block appended to degraded reports (empty string
/// at full coverage).
fn failure_block(views: &[CellView<'_>]) -> String {
    let failures: Vec<&CellView<'_>> = views.iter().filter(|v| v.failure.is_some()).collect();
    if failures.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "\nfailure taxonomy ({}/{} cells failed):\n",
        failures.len(),
        views.len()
    );
    for v in failures {
        let (class, attempts, error) = v.failure.as_ref().expect("filtered on failure");
        let first_line = error.lines().next().unwrap_or("");
        out.push_str(&format!(
            "  {}: {class} after {attempts} attempt(s) — {first_line}\n",
            v.workload
        ));
        if let Some(detail) = v.detail {
            let citation = detail_citation(detail);
            if !citation.is_empty() {
                out.push_str(&format!("      detail: {citation}\n"));
            }
        }
    }
    out
}

/// Renders one figure's report from its cells' outcomes. The cell order
/// (from [`cells::catalog`]) fixes the row order.
pub fn render_figure(
    figure: &str,
    cell_list: &[JobSpec],
    outcomes: &BTreeMap<String, JobOutcome>,
) -> String {
    let vs = views(cell_list, outcomes);
    let cov = coverage(&vs);
    let fb = failure_block(&vs);
    match figure {
        "fig1" => render_fig1(&vs, cov, &fb),
        "fig4" => render_fig4(&vs, cov, &fb),
        "fig7" => render_fig7(&vs, cov, &fb),
        "fig8" => render_fig8(&vs, cov, &fb),
        "fig9" => render_fig9(&vs, cov, &fb),
        "fig10" => render_fig10(&vs, cov, &fb),
        "fig11" => render_fig11(&vs, cov, &fb),
        "fig12" => render_fig12(&vs, cov, &fb),
        "ablations" => render_ablations(&vs, cov, &fb),
        "prefzoo" => render_prefzoo(&vs, cov, &fb),
        other => format!("unknown figure: {other}\n"),
    }
}

fn dash_row(name: &str, cols: usize) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(std::iter::repeat_n("-".to_string(), cols));
    row
}

fn render_fig1(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let title = format!(
        "Figure 1: UPC timeline, pointer-chase microbenchmark{cov}\n\
         (paper: CRISP improves average UPC by >30% over OOO)\n\n"
    );
    let Some(p) = vs.first().and_then(|v| v.payload) else {
        return format!("{title}{fb}");
    };
    let k = p[3] as usize;
    let (ooo_series, crisp_series) = (&p[4..4 + k], &p[4 + k..4 + 2 * k]);
    let mut t = Table::new(vec!["bucket", "OOO UPC", "CRISP UPC"]);
    for i in 0..k {
        t.row(vec![
            format!("{i}"),
            format!("{:.2}", ooo_series[i]),
            format!("{:.2}", crisp_series[i]),
        ]);
    }
    format!(
        "{title}{t}\naverage UPC: OOO {:.3}, CRISP {:.3}  =>  {:+.1}%\n{fb}",
        p[0], p[1], p[2]
    )
}

fn render_fig4(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec!["workload", "avg load-slice size", "slices"]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{:.1}", p[0]),
                format!("{}", p[1] as u64),
            ]),
            None => t.row(dash_row(v.workload, 2)),
        }
    }
    format!(
        "Figure 4: average dynamic load-slice size (unfiltered backward slices){cov}\n\
         (paper: slices range from a handful to thousands of instructions)\n\n{t}{fb}"
    )
}

fn render_fig7(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec![
        "workload",
        "CRISP %",
        "IBDA-1K %",
        "IBDA-8K %",
        "IBDA-64K %",
        "IBDA-inf %",
    ]);
    let mut crisp_all = Vec::new();
    let mut ibda1k_all = Vec::new();
    for v in vs {
        match v.payload {
            Some(p) => {
                crisp_all.push(p[0]);
                ibda1k_all.push(p[1]);
                let mut cells = vec![v.workload.to_string()];
                cells.extend(p.iter().map(|x| format!("{x:+.1}")));
                t.row(cells);
            }
            None => t.row(dash_row(v.workload, 5)),
        }
    }
    format!(
        "Figure 7: IPC improvement over the OOO baseline{cov}\n\
         (paper: CRISP +8.4% avg / up to +38%; IBDA far behind, sometimes negative)\n\n{t}\n\
         geomean: CRISP {:+.2}%, IBDA-1K {:+.2}%\n{fb}",
        geomean_speedup(&crisp_all),
        geomean_speedup(&ibda1k_all)
    )
}

fn render_fig8(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec!["workload", "loads %", "branches %", "both %"]);
    let mut synergy = Vec::new();
    for v in vs {
        match v.payload {
            Some(p) => {
                if p[2] > p[0].max(p[1]) + 0.05 {
                    synergy.push(v.workload);
                }
                let mut cells = vec![v.workload.to_string()];
                cells.extend(p.iter().map(|x| format!("{x:+.1}")));
                t.row(cells);
            }
            None => t.row(dash_row(v.workload, 3)),
        }
    }
    format!(
        "Figure 8: load slices, branch slices, and their combination{cov}\n\
         (paper: several apps benefit from both, combined > either alone)\n\n{t}\n\
         combined beats both individual modes on: {synergy:?}\n{fb}"
    )
}

fn render_fig9(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec![
        "workload",
        "64/180 %",
        "96/224 %",
        "144/336 %",
        "192/448 %",
    ]);
    for v in vs {
        match v.payload {
            Some(p) => {
                let mut cells = vec![v.workload.to_string()];
                cells.extend(p.iter().map(|x| format!("{x:+.1}")));
                t.row(cells);
            }
            None => t.row(dash_row(v.workload, 4)),
        }
    }
    format!(
        "Figure 9: CRISP speedup across RS/ROB sizes{cov}\n\
         (paper: xhpcg grows with the window, moses peaks at the smallest)\n\n{t}{fb}"
    )
}

fn render_fig10(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec!["workload", "T=5% %", "T=1% %", "T=0.2% %"]);
    let mut per_threshold = [Vec::new(), Vec::new(), Vec::new()];
    for v in vs {
        match v.payload {
            Some(p) => {
                let mut cells = vec![v.workload.to_string()];
                for (i, x) in p.iter().enumerate() {
                    per_threshold[i].push(*x);
                    cells.push(format!("{x:+.1}"));
                }
                t.row(cells);
            }
            None => t.row(dash_row(v.workload, 3)),
        }
    }
    format!(
        "Figure 10: miss-contribution threshold sensitivity{cov}\n\
         (paper: T=1% best overall, per-app optima differ)\n\n{t}\n\
         geomeans: T=5% {:+.2}%, T=1% {:+.2}%, T=0.2% {:+.2}%\n{fb}",
        geomean_speedup(&per_threshold[0]),
        geomean_speedup(&per_threshold[1]),
        geomean_speedup(&per_threshold[2])
    )
}

fn render_fig11(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec!["workload", "critical insts", "static ratio %"]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{}", p[0] as u64),
                format!("{:.1}", p[1] * 100.0),
            ]),
            None => t.row(dash_row(v.workload, 2)),
        }
    }
    format!(
        "Figure 11: unique critical (tagged) instructions per application{cov}\n\
         (paper: perlbench/gcc/moses exceed 10,000 — beyond any IST)\n\n{t}{fb}"
    )
}

fn render_fig12(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut t = Table::new(vec![
        "workload",
        "static ovh %",
        "dynamic ovh %",
        "icache MPKI base",
        "icache MPKI CRISP",
    ]);
    let mut dyn_all = Vec::new();
    for v in vs {
        match v.payload {
            Some(p) => {
                dyn_all.push(p[1]);
                t.row(vec![
                    v.workload.to_string(),
                    format!("{:.2}", p[0]),
                    format!("{:.2}", p[1]),
                    format!("{:.3}", p[2]),
                    format!("{:.3}", p[3]),
                ]);
            }
            None => t.row(dash_row(v.workload, 4)),
        }
    }
    let avg = dyn_all.iter().sum::<f64>() / dyn_all.len().max(1) as f64;
    format!(
        "Figure 12: instruction-prefix footprint overhead{cov}\n\
         (paper: ~5.2% dynamic average, worst-case icache MPKI +2.6%)\n\n{t}\n\
         average dynamic overhead: {avg:.2}%\n{fb}"
    )
}

fn render_ablations(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    let mut out = String::new();

    let mut t = Table::new(vec!["workload", "random %", "oldest-first", "CRISP %"]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{:+.1}", p[0]),
                "+0.0 (ref)".to_string(),
                format!("{:+.1}", p[1]),
            ]),
            None => t.row(dash_row(v.workload, 3)),
        }
    }
    out.push_str(&format!(
        "Ablation A: scheduler policy (speedup vs oldest-ready-first){cov}\n\n{t}\n"
    ));

    let mut t = Table::new(vec!["workload", "reg-only %", "reg+mem %"]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{:+.1}", p[2]),
                format!("{:+.1}", p[3]),
            ]),
            None => t.row(dash_row(v.workload, 2)),
        }
    }
    out.push_str(&format!(
        "Ablation B: slicing through memory (Section 3.3; namd is the showcase)\n\n{t}\n"
    ));

    let mut t = Table::new(vec!["workload", "keep all %", "keep 0.5 %", "keep 0.9 %"]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{:+.1}", p[4]),
                format!("{:+.1}", p[5]),
                format!("{:+.1}", p[6]),
            ]),
            None => t.row(dash_row(v.workload, 3)),
        }
    }
    out.push_str(&format!(
        "Ablation C: critical-path filtering fraction (Section 3.5)\n\n{t}\n"
    ));

    let mut t = Table::new(vec![
        "workload",
        "CRISP gain %",
        "CRISP gain @ perfect BP %",
    ]);
    for v in vs {
        match v.payload {
            Some(p) => t.row(vec![
                v.workload.to_string(),
                format!("{:+.1}", p[7]),
                format!("{:+.1}", p[8]),
            ]),
            None => t.row(dash_row(v.workload, 2)),
        }
    }
    out.push_str(&format!(
        "Ablation D: perfect branch prediction (Section 5.3: load-slice \
         benefit grows when mispredicts vanish)\n\n{t}{fb}"
    ));
    out
}

/// Renders the cross-mechanism prefetcher matrix: one metric table per
/// figure dimension (speedup, accuracy, coverage, timeliness) with a
/// mechanism per column, then the CRISP-vs-SPP headline on the
/// irregular/pointer-chasing workloads — the gap the paper targets.
fn render_prefzoo(vs: &[CellView<'_>], cov: Coverage, fb: &str) -> String {
    use crate::cells::ZOO_MECHS;
    const STRIDE: usize = 8;
    // Per-mechanism offsets inside one block.
    const SPEEDUP: usize = 1;
    const ACCURACY: usize = 2;
    const COVERAGE: usize = 3;
    const TIMELINESS: usize = 4;

    let cell = |p: &[f64], mech: usize, field: usize| p[mech * STRIDE + field];
    let mut out = format!(
        "Prefetcher zoo: cross-mechanism matrix{cov}\n\
         (speedup % vs the bop+stream OOO baseline; accuracy/coverage/\n\
         timeliness in [0,1], hardware mechanisms only)\n\n"
    );

    for (title, field, fmt) in [
        ("speedup % over base", SPEEDUP, 1usize),
        ("accuracy (useful / issued)", ACCURACY, 2),
        (
            "coverage (nopf demand-load LLC misses removed)",
            COVERAGE,
            2,
        ),
        (
            "timeliness (fully-hidden fraction of useful)",
            TIMELINESS,
            2,
        ),
    ] {
        let mut header = vec!["workload"];
        header.extend_from_slice(&ZOO_MECHS);
        let mut t = Table::new(header);
        let mut per_mech: Vec<Vec<f64>> = vec![Vec::new(); ZOO_MECHS.len()];
        for v in vs {
            match v.payload {
                Some(p) => {
                    let mut row = vec![v.workload.to_string()];
                    for (m, col) in per_mech.iter_mut().enumerate() {
                        let x = cell(p, m, field);
                        col.push(x);
                        row.push(if field == SPEEDUP {
                            format!("{x:+.1}")
                        } else {
                            format!("{x:.fmt$}")
                        });
                    }
                    t.row(row);
                }
                None => t.row(dash_row(v.workload, ZOO_MECHS.len())),
            }
        }
        let mut summary = vec!["geomean/mean".to_string()];
        for col in &per_mech {
            summary.push(if col.is_empty() {
                "-".to_string()
            } else if field == SPEEDUP {
                format!("{:+.1}", geomean_speedup(col))
            } else {
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                format!("{mean:.fmt$}")
            });
        }
        t.row(summary);
        out.push_str(&format!("{title}:\n\n{t}\n"));
    }

    // Headline: CRISP against the strongest conventional hardware
    // prefetcher on the irregular, pointer-chasing workloads.
    let irregular = ["pointer_chase", "mcf", "omnetpp", "xalancbmk"];
    let spp_col = ZOO_MECHS.iter().position(|m| *m == "spp").expect("spp");
    let crisp_col = ZOO_MECHS.iter().position(|m| *m == "crisp").expect("crisp");
    let mut t = Table::new(vec!["workload", "SPP %", "CRISP %", "CRISP - SPP"]);
    let (mut spp_all, mut crisp_all) = (Vec::new(), Vec::new());
    for v in vs.iter().filter(|v| irregular.contains(&v.workload)) {
        match v.payload {
            Some(p) => {
                let s = cell(p, spp_col, SPEEDUP);
                let c = cell(p, crisp_col, SPEEDUP);
                spp_all.push(s);
                crisp_all.push(c);
                t.row(vec![
                    v.workload.to_string(),
                    format!("{s:+.1}"),
                    format!("{c:+.1}"),
                    format!("{:+.1}", c - s),
                ]);
            }
            None => t.row(dash_row(v.workload, 3)),
        }
    }
    out.push_str(&format!(
        "headline: CRISP vs SPP on irregular/pointer-chasing workloads\n\
         (the criticality gap conventional pattern prefetchers leave open)\n\n{t}\n"
    ));
    if !spp_all.is_empty() {
        out.push_str(&format!(
            "irregular geomean: SPP {:+.2}%, CRISP {:+.2}%\n",
            geomean_speedup(&spp_all),
            geomean_speedup(&crisp_all)
        ));
    }
    out.push_str(fb);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::cell_spec;
    use crate::experiments::ExperimentScale;
    use crisp_harness::FailureClass;

    fn done(payload: Vec<f64>) -> JobOutcome {
        JobOutcome::Completed {
            payload,
            attempts: 1,
            resumed: false,
            cached: false,
        }
    }

    #[test]
    fn full_coverage_renders_without_annotations() {
        let cells = vec![
            cell_spec("fig4", "mcf", ExperimentScale::Tiny),
            cell_spec("fig4", "lbm", ExperimentScale::Tiny),
        ];
        let mut outcomes = BTreeMap::new();
        outcomes.insert("fig4/mcf".to_string(), done(vec![12.5, 40.0]));
        outcomes.insert("fig4/lbm".to_string(), done(vec![3.0, 7.0]));
        let s = render_figure("fig4", &cells, &outcomes);
        assert!(s.contains("12.5"));
        assert!(s.contains("40"));
        assert!(!s.contains("DEGRADED"));
        assert!(!s.contains("failure taxonomy"));
    }

    #[test]
    fn failed_cells_degrade_with_taxonomy() {
        let cells = vec![
            cell_spec("fig11", "mcf", ExperimentScale::Tiny),
            cell_spec("fig11", "lbm", ExperimentScale::Tiny),
        ];
        let mut outcomes = BTreeMap::new();
        outcomes.insert("fig11/mcf".to_string(), done(vec![120.0, 0.05]));
        outcomes.insert(
            "fig11/lbm".to_string(),
            JobOutcome::Failed {
                class: FailureClass::Deadlock,
                error: "simulator deadlock at cycle 7\n  ROB head: pc 3".to_string(),
                attempts: 4,
                detail: Some(Value::Obj(vec![
                    ("kind".to_string(), Value::Str("deadlock".into())),
                    ("cycle".to_string(), Value::Num(7.0)),
                    ("rob".to_string(), Value::Str("12/224".into())),
                    ("rs".to_string(), Value::Str("4/96".into())),
                ])),
            },
        );
        let s = render_figure("fig11", &cells, &outcomes);
        assert!(s.contains("[DEGRADED (1/2 workloads)]"), "{s}");
        assert!(s.contains("failure taxonomy (1/2 cells failed):"), "{s}");
        assert!(
            s.contains("lbm: deadlock after 4 attempt(s) — simulator deadlock at cycle 7"),
            "{s}"
        );
        assert!(
            s.contains("detail: cycle=7 rob=12/224 rs=4/96"),
            "the manifest's structured record is cited: {s}"
        );
        assert!(
            s.contains("lbm  "),
            "dash row keeps the workload visible: {s}"
        );
    }

    #[test]
    fn missing_outcomes_render_as_incomplete() {
        let cells = vec![cell_spec("fig9", "mcf", ExperimentScale::Tiny)];
        let s = render_figure("fig9", &cells, &BTreeMap::new());
        assert!(s.contains("[DEGRADED (0/1 workloads)]"));
        assert!(s.contains("incomplete"));
        assert!(s.contains("sweep stopped before this cell ran"));
    }

    #[test]
    fn geomeans_skip_failed_cells() {
        let cells = vec![
            cell_spec("fig7", "mcf", ExperimentScale::Tiny),
            cell_spec("fig7", "lbm", ExperimentScale::Tiny),
        ];
        let mut outcomes = BTreeMap::new();
        outcomes.insert("fig7/mcf".to_string(), done(vec![10.0, 1.0, 2.0, 3.0, 4.0]));
        outcomes.insert(
            "fig7/lbm".to_string(),
            JobOutcome::Failed {
                class: FailureClass::Timeout,
                error: "wall-clock deadline exceeded".to_string(),
                attempts: 2,
                detail: None,
            },
        );
        let s = render_figure("fig7", &cells, &outcomes);
        assert!(s.contains("geomean: CRISP +10.00%, IBDA-1K +1.00%"), "{s}");
    }
}
