//! Regenerates the paper's tables and figures.
//!
//! ```text
//! Usage: figures [--fast] [fig1|fig4|fig7|fig8|fig9|fig10|fig11|fig12|table1|all]
//! ```

use crisp_bench::{ablations, fig1, fig10, fig11, fig12, fig4, fig7, fig8, fig9, table1, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast {
        ExperimentScale::Fast
    } else {
        ExperimentScale::Full
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--fast")
        .map(String::as_str)
        .collect();
    let all = targets.is_empty() || targets.contains(&"all");

    let run = |name: &str| all || targets.contains(&name);

    if run("table1") {
        println!("{}\n", table1());
    }
    if run("fig1") {
        println!("{}\n", fig1(scale));
    }
    if run("fig4") {
        println!("{}\n", fig4(scale));
    }
    if run("fig7") {
        println!("{}\n", fig7(scale));
    }
    if run("fig8") {
        println!("{}\n", fig8(scale));
    }
    if run("fig9") {
        println!("{}\n", fig9(scale));
    }
    if run("fig10") {
        println!("{}\n", fig10(scale));
    }
    if run("fig11") {
        println!("{}\n", fig11(scale));
    }
    if run("fig12") {
        println!("{}\n", fig12(scale));
    }
    if run("ablations") {
        println!("{}\n", ablations(scale));
    }

    let known = [
        "table1", "fig1", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "ablations", "all",
    ];
    for t in &targets {
        if !known.contains(t) {
            eprintln!("unknown target: {t}");
            eprintln!("usage: figures [--fast] [{}]", known.join("|"));
            std::process::exit(2);
        }
    }
}
