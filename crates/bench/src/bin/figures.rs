//! Regenerates the paper's tables and figures — the legacy *serial,
//! fail-fast* entry point. For long sweeps prefer the `crisp-bench`
//! binary, which runs the same cells under the crisp-harness supervisor
//! (parallel workers, deadlines, retries, resumable manifests, degraded
//! salvage).
//!
//! ```text
//! Usage: figures [--fast] [fig1|fig4|fig7|fig8|fig9|fig10|fig11|fig12|table1|ablations|all]
//! ```
//!
//! Exits 0 on success, 1 if any experiment fails (the error is printed to
//! stderr), 2 on unknown targets.

use crisp_bench::{
    ablations, fig1, fig10, fig11, fig12, fig4, fig7, fig8, fig9, table1, ExperimentScale,
};
use crisp_core::CrispError;
use std::process::ExitCode;

const KNOWN: [&str; 11] = [
    "table1",
    "fig1",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "all",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast {
        ExperimentScale::Fast
    } else {
        ExperimentScale::Full
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--fast")
        .map(String::as_str)
        .collect();
    for t in &targets {
        if !KNOWN.contains(t) {
            eprintln!("unknown target: {t}");
            eprintln!("usage: figures [--fast] [{}]", KNOWN.join("|"));
            return ExitCode::from(2);
        }
    }
    let all = targets.is_empty() || targets.contains(&"all");
    let run = |name: &str| all || targets.contains(&name);

    type Job = fn(ExperimentScale) -> Result<String, CrispError>;
    let jobs: [(&str, Job); 9] = [
        ("fig1", fig1),
        ("fig4", fig4),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("ablations", ablations),
    ];

    if run("table1") {
        println!("{}\n", table1());
    }
    for (name, job) in jobs {
        if !run(name) {
            continue;
        }
        match job(scale) {
            Ok(report) => println!("{report}\n"),
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
