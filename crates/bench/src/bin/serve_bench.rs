//! `serve-bench` — seeds the job-API latency trajectory (`BENCH_7.json`).
//!
//! Runs two in-process `crisp-serve` daemons sharing one result store
//! and measures the full submit→result round trip through the HTTP job
//! API — cold (every cell simulated and published) then warm (every
//! cell served from the store, via a second daemon with a fresh job
//! registry) — so later PRs can track both the service overhead and the
//! warm-path speedup across the repo's history.
//!
//! ```text
//! usage: serve-bench [--out PATH] [--scratch DIR]
//! exit codes: 0 ok, 1 benchmark invariant broken, 2 usage error
//! ```
//!
//! The warm job must re-simulate zero cells and render byte-identical
//! tables; either miss is a correctness failure of the daemon's
//! idempotent planning or the store's keying, so it fails the run.

use crisp_bench::sweep::{build_jobs, run_supervised_sweep, sweep_spec, SweepConfig};
use crisp_bench::ExperimentScale;
use crisp_harness::cell_key;
use crisp_harness::json::Value;
use crisp_serve::{
    run_daemon, Client, ClientConfig, DaemonConfig, ExecCtx, ExecResult, JobPlan, JobRecord,
    SubmitRequest,
};
use crisp_sim::CancelToken;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn usage() -> std::process::ExitCode {
    eprintln!("usage: serve-bench [--out PATH] [--scratch DIR]");
    std::process::ExitCode::from(2)
}

const TARGET: &str = "fig1";
const SCALE: ExperimentScale = ExperimentScale::Fast;

fn bench_sweep_config(request: &SubmitRequest) -> SweepConfig {
    SweepConfig {
        scale: SCALE,
        targets: request.targets.clone(),
        workloads: request.workloads.clone(),
        progress: false,
        ..SweepConfig::default()
    }
}

fn plan(request: &SubmitRequest) -> Result<JobPlan, String> {
    let cfg = bench_sweep_config(request);
    let jobs = build_jobs(&cfg);
    Ok(JobPlan {
        request: request.clone(),
        spec: sweep_spec(&cfg),
        cells: jobs.iter().map(|j| cell_key(&j.id, &j.spec)).collect(),
    })
}

fn exec(record: &JobRecord, ctx: &ExecCtx) -> Result<ExecResult, String> {
    let mut cfg = bench_sweep_config(&record.request);
    cfg.manifest = Some(ctx.manifest.clone());
    cfg.resume = ctx.resume;
    cfg.store = Some(ctx.store.clone());
    cfg.stop = Some(ctx.stop.clone());
    let out = run_supervised_sweep(&cfg).map_err(|e| e.to_string())?;
    Ok(ExecResult {
        rendered: out.rendered,
        completed: out.report.completed(),
        failed: out.report.failed(),
        interrupted: out.report.interrupted,
        store_hits: out.report.store_hits,
        store_computed: out.report.store_computed,
        ..ExecResult::default()
    })
}

/// One daemon lifetime: submit the benchmark job, poll to the result,
/// drain. Returns `(round_trip_ms, result_doc)`.
fn one_round(data_dir: &Path, store_dir: &Path) -> Result<(f64, Value), String> {
    let cfg = DaemonConfig {
        data_dir: data_dir.to_path_buf(),
        store_dir: Some(store_dir.to_path_buf()),
        ..DaemonConfig::default()
    };
    let shutdown = CancelToken::new();
    let daemon = {
        let token = shutdown.clone();
        std::thread::spawn(move || run_daemon(&cfg, &plan, &exec, &token))
    };
    let endpoint_file = data_dir.join("endpoint");
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&endpoint_file) {
            if !s.is_empty() {
                break s;
            }
        }
        if Instant::now() >= deadline {
            return Err("daemon never published its endpoint".to_string());
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let client = Client::new(ClientConfig {
        addr,
        ..ClientConfig::default()
    });
    let request = SubmitRequest {
        targets: vec![TARGET.to_string()],
        workloads: None,
        scale: "fast".to_string(),
        prefetcher: None,
    };

    let started = Instant::now();
    let ack = client.submit(&request).map_err(|e| e.to_string())?;
    let id = ack
        .get("id")
        .and_then(Value::as_str)
        .ok_or("submit ack carried no id")?
        .to_string();
    let result = loop {
        if let Some(doc) = client.result(&id).map_err(|e| e.to_string())? {
            break doc;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let rtt_ms = started.elapsed().as_secs_f64() * 1e3;

    shutdown.cancel();
    daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?
        .map_err(|e| format!("daemon failed: {e}"))?;
    Ok((rtt_ms, result))
}

fn num(v: &Value, name: &str) -> f64 {
    v.get(name).and_then(Value::as_u64).unwrap_or(0) as f64
}

fn main() -> std::process::ExitCode {
    let mut out = PathBuf::from("BENCH_7.json");
    let mut scratch: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            "--scratch" => match args.next() {
                Some(v) => scratch = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let scratch = scratch.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("crisp-serve-bench-{}", std::process::id()))
    });
    // Cold-vs-warm needs a pristine store and two fresh job registries.
    std::fs::remove_dir_all(&scratch).ok();
    let store = scratch.join("store");

    let (cold_ms, cold) = match one_round(&scratch.join("cold"), &store) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: cold round failed: {e}");
            return std::process::ExitCode::from(1);
        }
    };
    let (warm_ms, warm) = match one_round(&scratch.join("warm"), &store) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench: warm round failed: {e}");
            return std::process::ExitCode::from(1);
        }
    };
    std::fs::remove_dir_all(&scratch).ok();

    let cells = num(&cold, "completed") + num(&cold, "failed");
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("serve-cold-vs-warm-rtt".into())),
        ("target".into(), Value::Str(TARGET.into())),
        ("scale".into(), Value::Str("fast".into())),
        ("cells".into(), Value::Num(cells)),
        ("cold_rtt_ms".into(), Value::Num(cold_ms)),
        ("warm_rtt_ms".into(), Value::Num(warm_ms)),
        (
            "cold_computed".into(),
            Value::Num(num(&cold, "store_computed")),
        ),
        ("warm_hits".into(), Value::Num(num(&warm, "store_hits"))),
        (
            "warm_computed".into(),
            Value::Num(num(&warm, "store_computed")),
        ),
        (
            "speedup".into(),
            Value::Num(if warm_ms > 0.0 {
                cold_ms / warm_ms
            } else {
                0.0
            }),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.encode())) {
        eprintln!("serve-bench: writing {} failed: {e}", out.display());
        return std::process::ExitCode::from(1);
    }
    eprintln!(
        "[serve-bench] {cells} cell(s): cold RTT {cold_ms:.0} ms, warm RTT {warm_ms:.0} ms -> {}",
        out.display()
    );

    // Contract checks: warm must be pure store hits with identical tables.
    let (cold_tables, warm_tables) = (
        cold.get("rendered").and_then(Value::as_str).unwrap_or(""),
        warm.get("rendered").and_then(Value::as_str).unwrap_or(""),
    );
    if cold_tables.is_empty() || warm_tables != cold_tables {
        eprintln!("serve-bench: warm render differs from cold render");
        return std::process::ExitCode::from(1);
    }
    if num(&warm, "store_hits") != cells || num(&warm, "store_computed") != 0.0 {
        eprintln!(
            "serve-bench: warm job missed the cache ({} hit(s), {} computed of {cells} cell(s))",
            num(&warm, "store_hits"),
            num(&warm, "store_computed"),
        );
        return std::process::ExitCode::from(1);
    }
    std::process::ExitCode::SUCCESS
}
