//! `sim-bench` — engine throughput benchmark in KIPS (`BENCH_9.json`),
//! plus a per-prefetcher KIPS dimension (`BENCH_10.json`).
//!
//! Measures how many thousand instructions per second the cycle engine
//! retires on a fixed set of workloads, the host-side companion to the
//! simulated-IPC figures: CRISP experiments are throughput-bound on the
//! engine, so a KIPS regression here is wall-clock pain everywhere.
//!
//! Per workload: build + emulate once (off the clock), then `--warmup`
//! untimed runs followed by `--trials` timed runs of the same trace on
//! a fresh `Simulator` each, reporting every trial plus min and median
//! KIPS. Timed runs keep observability off — this is the shipping
//! configuration. One extra run per workload flips
//! `SimConfig::hostprof` on and the summed self-profile is emitted as
//! the artifact's `hostprof` object (readable by `crisp obs hotspots
//! BENCH_9.json`), so the benchmark that detects a regression also
//! says which engine phase ate it.
//!
//! After the baseline pass, the same trace is re-simulated once per
//! hardware-prefetcher mechanism (`none`, the `bop+stream` default,
//! `ghbw`, `sisb`, `spp`) and the per-mechanism KIPS — the host cost of
//! each zoo member — lands in `BENCH_10.json` together with its
//! issued/useful/late effectiveness counters.
//!
//! ```text
//! usage: sim-bench [--trials N] [--warmup N] [--instrs N] [--out PATH]
//!                  [--zoo-out PATH] [--quick]
//! exit codes: 0 ok, 1 benchmark invariant broken, 2 usage error
//! ```
//!
//! Invariants gated on: every trial retires the same instruction count
//! (determinism), and the self-profile attributes >= 95% of engine host
//! time to named phases (the `other` bucket stays honest).

use crisp_core::{build, Input, SimConfig};
use crisp_emu::Emulator;
use crisp_harness::json::Value;
use crisp_obs::HostProfReport;
use crisp_sim::Simulator;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Workloads spanning the engine's behaviour space: pointer chasing
/// (latency-bound, MLP=1), mcf (cache-hostile dependent loads), lbm
/// (streaming stores, bandwidth-bound).
const WORKLOADS: [&str; 3] = ["pointer_chase", "mcf", "lbm"];

/// Named-phase attribution floor (percent) for the self-profile.
const NAMED_FLOOR_PCT: f64 = 95.0;

/// The BENCH_10 prefetcher dimension: label -> registry spec.
const ZOO: [(&str, &str); 5] = [
    ("none", "none"),
    ("base", "bop+stream"),
    ("ghbw", "ghbw"),
    ("sisb", "sisb"),
    ("spp", "spp"),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: sim-bench [--trials N] [--warmup N] [--instrs N] [--out PATH] \
         [--zoo-out PATH] [--quick]"
    );
    ExitCode::from(2)
}

struct WorkloadResult {
    name: &'static str,
    retired: u64,
    cycles: u64,
    kips: Vec<f64>,
    prof: HostProfReport,
}

/// Benchmarks one workload: warmup + trials with observability off,
/// then one profiled run for phase attribution.
fn bench_workload(
    name: &'static str,
    instrs: usize,
    warmup: usize,
    trials: usize,
) -> Result<WorkloadResult, String> {
    let w = build(name, Input::Train).map_err(|e| format!("{name}: build failed: {e}"))?;
    let trace = Emulator::new(&w.program, w.memory.clone()).run(instrs as u64);
    let cfg = SimConfig::skylake();
    let run = |cfg: &SimConfig| {
        let sim = Simulator::try_new(cfg.clone()).map_err(|e| format!("{name}: config: {e}"))?;
        let started = Instant::now();
        let res = sim
            .try_run(&w.program, &trace, None)
            .map_err(|e| format!("{name}: simulation failed: {e}"))?;
        Ok::<_, String>((started.elapsed().as_secs_f64(), res))
    };

    for _ in 0..warmup {
        run(&cfg)?;
    }
    let mut kips = Vec::with_capacity(trials);
    let mut retired = 0u64;
    let mut cycles = 0u64;
    for t in 0..trials {
        let (secs, res) = run(&cfg)?;
        if t == 0 {
            (retired, cycles) = (res.retired, res.cycles);
        } else if res.retired != retired {
            return Err(format!(
                "{name}: trial {t} retired {} instrs, trial 0 retired {retired} — \
                 the engine is nondeterministic",
                res.retired
            ));
        }
        kips.push(res.retired as f64 / 1e3 / secs.max(1e-9));
    }

    let mut prof_cfg = cfg;
    prof_cfg.hostprof = true;
    let (_, res) = run(&prof_cfg)?;
    Ok(WorkloadResult {
        name,
        retired,
        cycles,
        kips,
        prof: res.hostprof,
    })
}

struct ZooResult {
    mech: &'static str,
    spec: &'static str,
    retired: u64,
    cycles: u64,
    kips: Vec<f64>,
    issued: u64,
    useful: u64,
    late: u64,
}

/// Re-simulates one workload's trace under each zoo mechanism,
/// timing KIPS and capturing the effectiveness counters.
fn bench_zoo(
    name: &'static str,
    instrs: usize,
    warmup: usize,
    trials: usize,
) -> Result<Vec<ZooResult>, String> {
    let w = build(name, Input::Train).map_err(|e| format!("{name}: build failed: {e}"))?;
    let trace = Emulator::new(&w.program, w.memory.clone()).run(instrs as u64);
    let mut out = Vec::with_capacity(ZOO.len());
    for (mech, spec) in ZOO {
        let mut cfg = SimConfig::skylake();
        cfg.memory.prefetcher = spec
            .parse()
            .map_err(|e| format!("{name}/{mech}: bad zoo spec `{spec}`: {e}"))?;
        let run = || {
            let sim = Simulator::try_new(cfg.clone()).map_err(|e| format!("{name}/{mech}: {e}"))?;
            let started = Instant::now();
            let res = sim
                .try_run(&w.program, &trace, None)
                .map_err(|e| format!("{name}/{mech}: simulation failed: {e}"))?;
            Ok::<_, String>((started.elapsed().as_secs_f64(), res))
        };
        for _ in 0..warmup {
            run()?;
        }
        let mut kips = Vec::with_capacity(trials);
        let mut zr = ZooResult {
            mech,
            spec,
            retired: 0,
            cycles: 0,
            kips: Vec::new(),
            issued: 0,
            useful: 0,
            late: 0,
        };
        for t in 0..trials {
            let (secs, res) = run()?;
            if t == 0 {
                let pf = res.mem.prefetch_totals();
                (zr.retired, zr.cycles) = (res.retired, res.cycles);
                (zr.issued, zr.useful, zr.late) = (pf.issued, pf.useful, pf.late);
            } else if res.retired != zr.retired || res.cycles != zr.cycles {
                return Err(format!(
                    "{name}/{mech}: trial {t} diverged ({} instrs / {} cycles vs {} / {}) — \
                     the engine is nondeterministic",
                    res.retired, res.cycles, zr.retired, zr.cycles
                ));
            }
            kips.push(res.retired as f64 / 1e3 / secs.max(1e-9));
        }
        zr.kips = kips;
        out.push(zr);
    }
    Ok(out)
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The aggregate self-profile: phase times and scan counters summed
/// across every workload's profiled run.
fn sum_profiles(results: &[WorkloadResult]) -> HostProfReport {
    let mut total = HostProfReport {
        enabled: true,
        ..HostProfReport::default()
    };
    for r in results {
        for (i, ns) in r.prof.phase_ns.iter().enumerate() {
            total.phase_ns[i] += ns;
        }
        total.cycles += r.prof.cycles;
        total.retired += r.prof.retired;
        total.rs_slots_scanned += r.prof.rs_slots_scanned;
        total.age_compares += r.prof.age_compares;
        total.lsq_probes += r.prof.lsq_probes;
        total.mshr_probes += r.prof.mshr_probes;
    }
    total
}

/// Encodes a report in the JSON shape `crisp obs hotspots` reads back:
/// scalar counters plus a `phase_ns` name->ns object.
fn profile_json(p: &HostProfReport) -> Value {
    let phases = p
        .phases()
        .map(|(name, ns)| (name.to_string(), Value::Num(ns as f64)))
        .collect();
    Value::Obj(vec![
        ("enabled".into(), Value::Bool(p.enabled)),
        ("cycles".into(), Value::Num(p.cycles as f64)),
        ("retired".into(), Value::Num(p.retired as f64)),
        (
            "rs_slots_scanned".into(),
            Value::Num(p.rs_slots_scanned as f64),
        ),
        ("age_compares".into(), Value::Num(p.age_compares as f64)),
        ("lsq_probes".into(), Value::Num(p.lsq_probes as f64)),
        ("mshr_probes".into(), Value::Num(p.mshr_probes as f64)),
        ("phase_ns".into(), Value::Obj(phases)),
    ])
}

fn main() -> ExitCode {
    let mut trials = 5usize;
    let mut warmup = 1usize;
    let mut instrs = 200_000usize;
    let mut out = PathBuf::from("BENCH_9.json");
    let mut zoo_out = PathBuf::from("BENCH_10.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--zoo-out" => match args.next() {
                Some(v) => zoo_out = PathBuf::from(v),
                None => return usage(),
            },
            "--trials" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => trials = v,
                _ => return usage(),
            },
            "--warmup" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => warmup = v,
                _ => return usage(),
            },
            "--instrs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1_000 => instrs = v,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            // CI smoke setting: small trace, fewer trials, same shape.
            "--quick" => {
                trials = 2;
                warmup = 1;
                instrs = 30_000;
            }
            _ => return usage(),
        }
    }

    let mut results = Vec::new();
    for name in WORKLOADS {
        match bench_workload(name, instrs, warmup, trials) {
            Ok(r) => {
                let mut sorted = r.kips.clone();
                sorted.sort_by(f64::total_cmp);
                eprintln!(
                    "[sim-bench] {name}: {} instrs, {} cycles, KIPS min {:.0} / median {:.0} \
                     ({trials} trials)",
                    r.retired,
                    r.cycles,
                    sorted[0],
                    median(&sorted),
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("sim-bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let profile = sum_profiles(&results);
    let named_pct = profile.named_ns() as f64 * 100.0 / profile.total_ns().max(1) as f64;

    let workloads_json = results
        .iter()
        .map(|r| {
            let mut sorted = r.kips.clone();
            sorted.sort_by(f64::total_cmp);
            Value::Obj(vec![
                ("name".into(), Value::Str(r.name.into())),
                ("retired".into(), Value::Num(r.retired as f64)),
                ("cycles".into(), Value::Num(r.cycles as f64)),
                (
                    "kips".into(),
                    Value::Arr(r.kips.iter().map(|&k| Value::Num(k)).collect()),
                ),
                ("kips_min".into(), Value::Num(sorted[0])),
                ("kips_median".into(), Value::Num(median(&sorted))),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("sim-kips".into())),
        ("instrs".into(), Value::Num(instrs as f64)),
        ("warmup".into(), Value::Num(warmup as f64)),
        ("trials".into(), Value::Num(trials as f64)),
        ("workloads".into(), Value::Arr(workloads_json)),
        ("hostprof".into(), profile_json(&profile)),
        ("hostprof_named_pct".into(), Value::Num(named_pct)),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.encode())) {
        eprintln!("sim-bench: writing {} failed: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[sim-bench] self-profile: {:.1}% of host time in named phases -> {}",
        named_pct,
        out.display()
    );

    if named_pct < NAMED_FLOOR_PCT {
        eprintln!(
            "sim-bench: FAIL — only {named_pct:.1}% of engine host time lands in named \
             phases (floor {NAMED_FLOOR_PCT}%); instrument the gap before trusting hotspots"
        );
        return ExitCode::FAILURE;
    }

    // The prefetcher dimension: per-mechanism KIPS + effectiveness on
    // the same workload set, gated on the conservation invariant.
    let mut zoo_json = Vec::new();
    for name in WORKLOADS {
        let rows = match bench_zoo(name, instrs, warmup, trials) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sim-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut mech_json = Vec::new();
        for zr in &rows {
            if zr.useful > zr.issued {
                eprintln!(
                    "sim-bench: FAIL — {name}/{} credits {} useful prefetches out of only \
                     {} issued",
                    zr.mech, zr.useful, zr.issued
                );
                return ExitCode::FAILURE;
            }
            let mut sorted = zr.kips.clone();
            sorted.sort_by(f64::total_cmp);
            eprintln!(
                "[sim-bench] {name}/{}: KIPS median {:.0}, issued {} useful {} late {}",
                zr.mech,
                median(&sorted),
                zr.issued,
                zr.useful,
                zr.late,
            );
            mech_json.push(Value::Obj(vec![
                ("prefetcher".into(), Value::Str(zr.mech.into())),
                ("spec".into(), Value::Str(zr.spec.into())),
                ("retired".into(), Value::Num(zr.retired as f64)),
                ("cycles".into(), Value::Num(zr.cycles as f64)),
                (
                    "kips".into(),
                    Value::Arr(zr.kips.iter().map(|&k| Value::Num(k)).collect()),
                ),
                ("kips_min".into(), Value::Num(sorted[0])),
                ("kips_median".into(), Value::Num(median(&sorted))),
                ("issued".into(), Value::Num(zr.issued as f64)),
                ("useful".into(), Value::Num(zr.useful as f64)),
                ("late".into(), Value::Num(zr.late as f64)),
            ]));
        }
        zoo_json.push(Value::Obj(vec![
            ("name".into(), Value::Str(name.into())),
            ("mechanisms".into(), Value::Arr(mech_json)),
        ]));
    }
    let zoo_doc = Value::Obj(vec![
        ("bench".into(), Value::Str("sim-kips-prefetcher".into())),
        ("instrs".into(), Value::Num(instrs as f64)),
        ("warmup".into(), Value::Num(warmup as f64)),
        ("trials".into(), Value::Num(trials as f64)),
        ("workloads".into(), Value::Arr(zoo_json)),
    ]);
    if let Err(e) = std::fs::write(&zoo_out, format!("{}\n", zoo_doc.encode())) {
        eprintln!("sim-bench: writing {} failed: {e}", zoo_out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[sim-bench] prefetcher dimension -> {}", zoo_out.display());
    ExitCode::SUCCESS
}
