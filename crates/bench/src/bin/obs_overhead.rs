//! `obs-overhead` — proves the flight recorder is zero-cost when off.
//!
//! The engine's record calls dispatch through the `Tracer` enum; with
//! `Tracer::Off` the match arm is empty — one predicted branch. This
//! binary measures that per-call cost directly (a tight retire-style loop
//! with and without the call, interleaved, min-of-N so scheduler noise
//! cancels) and the engine's real per-instruction cost (a full tiny
//! simulation), then gates on two facts:
//!
//! 1. the disabled record call must cost under `--max-ns` (default
//!    0.5 ns) per call — anything above means the off path is doing real
//!    work (building events, touching the ring) before checking the
//!    switch;
//! 2. the implied retire-loop regression — per-call cost divided by the
//!    engine's measured per-instruction time, the recorded in-process
//!    baseline — must stay under `--threshold` percent (default 1%).
//!
//! It also reports, informationally, full-simulation throughput with
//! observability off vs fully on (tracer + telemetry + stall
//! attribution), so CI logs show what enabling everything actually costs.
//!
//! ```text
//! usage: obs-overhead [--threshold PCT] [--max-ns NS] [--iters N]
//! exit codes: 0 within bounds, 1 regression, 2 usage error
//! ```

use crisp_core::{build, Input, SimConfig};
use crisp_emu::Emulator;
use crisp_obs::{EventKind, Tracer};
use crisp_sim::Simulator;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const REPS: usize = 7;

/// One retire slot's worth of representative bookkeeping, mirroring what
/// the engine does per retired instruction besides the tracer hook:
/// stat counters, a per-PC table update, and a data-dependent branch.
#[inline]
fn retire_slot(i: u64, counters: &mut [u64; 1024], acc: &mut u64) -> u64 {
    let pc = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54;
    counters[(pc & 1023) as usize] += 1;
    *acc = acc.wrapping_add(i ^ pc);
    if *acc & 7 == 0 {
        counters[(i & 1023) as usize] += 1;
    }
    pc
}

/// The baseline retire loop: bookkeeping only, no recorder call.
fn spin_baseline(iters: u64, counters: &mut [u64; 1024]) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        retire_slot(cycle, counters, &mut acc);
    }
    acc
}

/// The same loop with a disabled-recorder call in the body.
fn spin_with_off_tracer(iters: u64, counters: &mut [u64; 1024], t: &mut Tracer) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        let pc = retire_slot(cycle, counters, &mut acc);
        t.record(cycle, i, pc, EventKind::Retire, None);
    }
    acc
}

fn time<F: FnMut() -> u64>(mut f: F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

/// One full tiny simulation; returns retired instructions per second,
/// best of 3.
fn sim_throughput(obs_on: bool) -> f64 {
    let w = build("pointer_chase", Input::Train).expect("workload");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(30_000);
    let mut cfg = SimConfig::skylake();
    if obs_on {
        cfg.tracer_capacity = Some(1 << 16);
        cfg.telemetry_interval = Some(4096);
        cfg.stall_attribution = true;
    }
    let mut best = f64::MIN;
    for _ in 0..3 {
        let sim = Simulator::try_new(cfg.clone()).expect("config");
        let start = Instant::now();
        let res = sim.try_run(&w.program, &trace, None).expect("simulation");
        let per_sec = res.retired as f64 / start.elapsed().as_secs_f64();
        best = best.max(per_sec);
    }
    best
}

fn main() -> ExitCode {
    let mut threshold_pct = 1.0f64;
    let mut max_ns = 0.5f64;
    let mut iters = 100_000_000u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--threshold" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                threshold_pct = v;
            }),
            "--max-ns" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                max_ns = v;
            }),
            "--iters" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                iters = v;
            }),
            _ => None,
        };
        if parsed.is_none() {
            eprintln!("usage: obs-overhead [--threshold PCT] [--max-ns NS] [--iters N]");
            return ExitCode::from(2);
        }
    }

    // Interleave A/B and keep the minimum of each: the min over enough
    // repetitions is the noise-free cost of the loop itself.
    let mut tracer = Tracer::Off;
    let mut counters = [0u64; 1024];
    let mut base = Duration::MAX;
    let mut off = Duration::MAX;
    for _ in 0..REPS {
        base = base.min(time(|| spin_baseline(iters, &mut counters)));
        off = off.min(time(|| {
            spin_with_off_tracer(iters, &mut counters, &mut tracer)
        }));
    }
    black_box(&counters);
    assert!(
        tracer.events().is_empty(),
        "Tracer::Off must record nothing"
    );
    let per_call_ns = (off.as_secs_f64() - base.as_secs_f64()).max(0.0) / iters as f64 * 1e9;
    println!(
        "record call: baseline loop {:>8.3?}  with Tracer::Off {:>8.3?}  => {per_call_ns:.3} \
         ns/call disabled (ceiling {max_ns} ns, {iters} iters, min of {REPS})",
        base, off
    );

    let sim_off = sim_throughput(false);
    let sim_on = sim_throughput(true);
    let per_instr_ns = 1e9 / sim_off;
    let regression_pct = per_call_ns / per_instr_ns * 100.0;
    println!(
        "full sim:    obs-off {:.2} Minstr/s  obs-on {:.2} Minstr/s  ({:+.1}% when enabled)",
        sim_off / 1e6,
        sim_on / 1e6,
        (sim_on - sim_off) / sim_off * 100.0
    );
    println!(
        "retire-loop regression when disabled: {regression_pct:.4}% of {per_instr_ns:.0} \
         ns/instr (threshold {threshold_pct}%)"
    );

    if per_call_ns > max_ns {
        eprintln!(
            "obs-overhead: FAIL — disabled record call costs {per_call_ns:.3} ns > {max_ns} ns: \
             the off path is doing real work"
        );
        return ExitCode::FAILURE;
    }
    if regression_pct > threshold_pct {
        eprintln!(
            "obs-overhead: FAIL — disabled tracer imposes {regression_pct:.3}% > {threshold_pct}% \
             on the retire loop"
        );
        return ExitCode::FAILURE;
    }
    println!("obs-overhead: PASS");
    ExitCode::SUCCESS
}
