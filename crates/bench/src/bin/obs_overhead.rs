//! `obs-overhead` — proves the flight recorder is zero-cost when off.
//!
//! The engine's record calls dispatch through the `Tracer` enum; with
//! `Tracer::Off` the match arm is empty — one predicted branch. This
//! binary measures that per-call cost directly (a tight retire-style loop
//! with and without the call, interleaved, min-of-N so scheduler noise
//! cancels) and the engine's real per-instruction cost (a full tiny
//! simulation), then gates on three hot-path facts, each under
//! `--max-ns` (default 0.5 ns) per call:
//!
//! 1. the disabled `Tracer` record call — anything above means the off
//!    path is doing real work (building events, touching the ring)
//!    before checking the switch;
//! 2. the disabled `HostProf::enter` phase mark — the self-profiler
//!    rides the same engine loop and must vanish the same way when off;
//! 3. the metrics `Counter::inc` — incremented on the daemon's request
//!    path, and cheap enough that instrumenting a loop with one is
//!    never a question;
//!
//! plus the implied retire-loop regression — disabled-record cost
//! divided by the engine's measured per-instruction time, the recorded
//! in-process baseline — must stay under `--threshold` percent
//! (default 1%).
//!
//! It also reports, informationally, full-simulation throughput with
//! observability off vs fully on (tracer + telemetry + stall
//! attribution), so CI logs show what enabling everything actually costs.
//!
//! ```text
//! usage: obs-overhead [--threshold PCT] [--max-ns NS] [--iters N]
//! exit codes: 0 within bounds, 1 regression, 2 usage error
//! ```

use crisp_core::{build, Input, SimConfig};
use crisp_emu::Emulator;
use crisp_obs::{EventKind, HostProf, Phase, Tracer};
use crisp_serve::Counter;
use crisp_sim::Simulator;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const REPS: usize = 7;

/// One retire slot's worth of representative bookkeeping, mirroring what
/// the engine does per retired instruction besides the tracer hook:
/// stat counters, a per-PC table update, and a data-dependent branch.
#[inline]
fn retire_slot(i: u64, counters: &mut [u64; 1024], acc: &mut u64) -> u64 {
    let pc = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54;
    counters[(pc & 1023) as usize] += 1;
    *acc = acc.wrapping_add(i ^ pc);
    if *acc & 7 == 0 {
        counters[(i & 1023) as usize] += 1;
    }
    pc
}

/// The baseline retire loop: bookkeeping only, no recorder call.
fn spin_baseline(iters: u64, counters: &mut [u64; 1024]) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        retire_slot(cycle, counters, &mut acc);
    }
    acc
}

/// The same loop with a disabled-recorder call in the body.
fn spin_with_off_tracer(iters: u64, counters: &mut [u64; 1024], t: &mut Tracer) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        let pc = retire_slot(cycle, counters, &mut acc);
        t.record(cycle, i, pc, EventKind::Retire, None);
    }
    acc
}

/// The same loop with a disabled self-profiler phase mark in the body.
/// The phase is a literal, exactly like the engine's call sites.
fn spin_with_off_hostprof(iters: u64, counters: &mut [u64; 1024], p: &mut HostProf) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        retire_slot(cycle, counters, &mut acc);
        p.enter(Phase::Wakeup);
    }
    acc
}

/// The same loop with a metrics counter increment in the body. Four
/// counters round-robined so the measurement captures the increment's
/// issue cost, not the store-to-load forwarding latency of hammering
/// one address back-to-back — the daemon's request path touches
/// different counters with real work in between, never the same one
/// twice in a row.
fn spin_with_counter(iters: u64, counters: &mut [u64; 1024], banks: &[Counter; 4]) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let cycle = black_box(i);
        retire_slot(cycle, counters, &mut acc);
        banks[(i & 3) as usize].inc();
    }
    acc
}

fn time<F: FnMut() -> u64>(mut f: F) -> Duration {
    let start = Instant::now();
    black_box(f());
    start.elapsed()
}

/// One full tiny simulation; returns retired instructions per second,
/// best of 3.
fn sim_throughput(obs_on: bool) -> f64 {
    let w = build("pointer_chase", Input::Train).expect("workload");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(30_000);
    let mut cfg = SimConfig::skylake();
    if obs_on {
        cfg.tracer_capacity = Some(1 << 16);
        cfg.telemetry_interval = Some(4096);
        cfg.stall_attribution = true;
    }
    let mut best = f64::MIN;
    for _ in 0..3 {
        let sim = Simulator::try_new(cfg.clone()).expect("config");
        let start = Instant::now();
        let res = sim.try_run(&w.program, &trace, None).expect("simulation");
        let per_sec = res.retired as f64 / start.elapsed().as_secs_f64();
        best = best.max(per_sec);
    }
    best
}

fn main() -> ExitCode {
    let mut threshold_pct = 1.0f64;
    let mut max_ns = 0.5f64;
    let mut iters = 100_000_000u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--threshold" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                threshold_pct = v;
            }),
            "--max-ns" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                max_ns = v;
            }),
            "--iters" => it.next().and_then(|v| v.parse().ok()).map(|v| {
                iters = v;
            }),
            _ => None,
        };
        if parsed.is_none() {
            eprintln!("usage: obs-overhead [--threshold PCT] [--max-ns NS] [--iters N]");
            return ExitCode::from(2);
        }
    }

    // Interleave the variants and keep the minimum of each: the min
    // over enough repetitions is the noise-free cost of the loop itself.
    let mut tracer = Tracer::Off;
    let mut hostprof = HostProf::new(false);
    let banks: [Counter; 4] = Default::default();
    let mut counters = [0u64; 1024];
    let mut base = Duration::MAX;
    let mut off = Duration::MAX;
    let mut prof = Duration::MAX;
    let mut ctr = Duration::MAX;
    for _ in 0..REPS {
        base = base.min(time(|| spin_baseline(iters, &mut counters)));
        off = off.min(time(|| {
            spin_with_off_tracer(iters, &mut counters, &mut tracer)
        }));
        prof = prof.min(time(|| {
            spin_with_off_hostprof(iters, &mut counters, &mut hostprof)
        }));
        ctr = ctr.min(time(|| spin_with_counter(iters, &mut counters, &banks)));
    }
    black_box(&counters);
    assert!(
        tracer.events().is_empty(),
        "Tracer::Off must record nothing"
    );
    assert!(!hostprof.is_on(), "HostProf::new(false) must stay off");
    assert_eq!(
        banks.iter().map(Counter::get).sum::<u64>(),
        iters * REPS as u64,
        "Counter::inc must count every call from a single thread"
    );
    let per_call = |with: Duration| -> f64 {
        (with.as_secs_f64() - base.as_secs_f64()).max(0.0) / iters as f64 * 1e9
    };
    let per_call_ns = per_call(off);
    let hostprof_ns = per_call(prof);
    let counter_ns = per_call(ctr);
    println!(
        "record call: baseline loop {:>8.3?}  with Tracer::Off {:>8.3?}  => {per_call_ns:.3} \
         ns/call disabled (ceiling {max_ns} ns, {iters} iters, min of {REPS})",
        base, off
    );
    println!(
        "phase mark:  with HostProf off {:>8.3?}  => {hostprof_ns:.3} ns/call disabled \
         (ceiling {max_ns} ns)",
        prof
    );
    println!(
        "counter inc: with Counter::inc {:>8.3?}  => {counter_ns:.3} ns/call \
         (ceiling {max_ns} ns)",
        ctr
    );

    let sim_off = sim_throughput(false);
    let sim_on = sim_throughput(true);
    let per_instr_ns = 1e9 / sim_off;
    let regression_pct = per_call_ns / per_instr_ns * 100.0;
    println!(
        "full sim:    obs-off {:.2} Minstr/s  obs-on {:.2} Minstr/s  ({:+.1}% when enabled)",
        sim_off / 1e6,
        sim_on / 1e6,
        (sim_on - sim_off) / sim_off * 100.0
    );
    println!(
        "retire-loop regression when disabled: {regression_pct:.4}% of {per_instr_ns:.0} \
         ns/instr (threshold {threshold_pct}%)"
    );

    if per_call_ns > max_ns {
        eprintln!(
            "obs-overhead: FAIL — disabled record call costs {per_call_ns:.3} ns > {max_ns} ns: \
             the off path is doing real work"
        );
        return ExitCode::FAILURE;
    }
    if hostprof_ns > max_ns {
        eprintln!(
            "obs-overhead: FAIL — disabled HostProf::enter costs {hostprof_ns:.3} ns > {max_ns} \
             ns: the off path is doing real work"
        );
        return ExitCode::FAILURE;
    }
    if counter_ns > max_ns {
        eprintln!(
            "obs-overhead: FAIL — Counter::inc costs {counter_ns:.3} ns > {max_ns} ns: the \
             metrics hot path is too heavy to leave on request handling"
        );
        return ExitCode::FAILURE;
    }
    if regression_pct > threshold_pct {
        eprintln!(
            "obs-overhead: FAIL — disabled tracer imposes {regression_pct:.3}% > {threshold_pct}% \
             on the retire loop"
        );
        return ExitCode::FAILURE;
    }
    println!("obs-overhead: PASS");
    ExitCode::SUCCESS
}
