//! `crisp` — the command-line front end to the CRISP reproduction.
//!
//! ```text
//! crisp list
//! crisp trace <workload> [--ref] [-n INSTRS] [-o FILE]
//! crisp profile <workload> [-n INSTRS] [--check]
//! crisp simulate <workload> [--ref] [--scheduler crisp|oldest|random] [-n INSTRS] [--check]
//!                [--pipe-trace FILE] [--trace-from CYCLE] [--trace-to CYCLE] [--trace-pc PC]
//!                [--stalls K]
//! crisp pipeline <workload> [--fast] [--loads-only|--branches-only] [--check]
//! crisp pipeview <workload> [--crisp] [-n INSTRS] [--from SEQ] [--len COUNT]
//! crisp obs summarize <FILE...>
//! crisp obs hotspots <BENCH.json...>
//! crisp obs spans <spans.jsonl...>
//! crisp cache stats|verify|gc|evict <KEY> --store DIR [--max-age-days D] [--max-entries N]
//! crisp submit <TARGET...> --addr HOST:PORT [--fast|--tiny] [--workloads A,B,C]
//!                          [--prefetcher SPEC]
//! crisp status <JOB> --addr HOST:PORT
//! crisp result <JOB> --addr HOST:PORT
//! crisp watch <JOB> --addr HOST:PORT [--interval-ms MS] [--follow]
//! ```
//!
//! The `submit`/`status`/`result`/`watch` subcommands talk to a
//! `crisp-serve` daemon over its HTTP job API, with bounded jittered
//! retries on transient failures (connect errors, 429 queue-full, 503
//! draining). `submit` is idempotent: resubmitting the same sweep
//! coalesces onto the existing job id. `watch` survives daemon
//! restarts: on connection reset/refused it reconnects with jittered
//! backoff and resumes from the last seen state; with `--follow` it
//! streams the job's live NDJSON events (`GET /jobs/ID/events`) to
//! stdout, resuming the stream from its cursor after a reconnect.
//!
//! Exit codes: `0` success, `2` usage/parse error, `3` unknown workload,
//! `4` rejected configuration, `5` runtime failure (emulation/simulation,
//! including watchdog-detected deadlocks, `--check` violations,
//! `crisp cache verify` finding corrupt entries, a job API call failing
//! for good, or a watched/fetched job finishing `failed`).

use crisp_core::{
    build, run_crisp_pipeline, ClassifierConfig, CrispError, Input, PipelineConfig, SchedulerKind,
    SimConfig, SimError, SliceMode, Table,
};
use crisp_emu::Emulator;
use crisp_obs::{parse_jsonl, render_kanata, summarize, TraceFilter};
use crisp_profile::{classify_branches, classify_loads, ProfileSummary};
use crisp_sim::Simulator;
use std::process::ExitCode;

const EXIT_USAGE: u8 = 2;
const EXIT_UNKNOWN_WORKLOAD: u8 = 3;
const EXIT_BAD_CONFIG: u8 = 4;
const EXIT_RUNTIME: u8 = 5;

/// A CLI failure: what to print and which exit code to die with.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Failure {
        Failure {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }
}

impl From<CrispError> for Failure {
    fn from(e: CrispError) -> Failure {
        let code = match &e {
            CrispError::UnknownWorkload(_) => EXIT_UNKNOWN_WORKLOAD,
            CrispError::Config(_) => EXIT_BAD_CONFIG,
            _ => EXIT_RUNTIME,
        };
        let message = match &e {
            CrispError::UnknownWorkload(_) => format!("{e}\n{}", workload_listing()),
            _ => e.to_string(),
        };
        Failure { code, message }
    }
}

impl From<SimError> for Failure {
    fn from(e: SimError) -> Failure {
        Failure::from(CrispError::from(e))
    }
}

fn workload_listing() -> String {
    format!(
        "registered workloads: {}",
        crisp_core::all_names().join(", ")
    )
}

fn usage_text() -> String {
    format!(
        "usage:\n  crisp list\n  crisp trace <workload> [--ref] [-n INSTRS] [-o FILE]\n  \
         crisp profile <workload> [-n INSTRS] [--check]\n  \
         crisp simulate <workload> [--ref] [--scheduler crisp|oldest|random] [-n INSTRS] [--check]\n  \
         \x20              [--pipe-trace FILE] [--trace-from CYCLE] [--trace-to CYCLE] [--trace-pc PC] [--stalls K]\n  \
         crisp pipeline <workload> [--fast] [--loads-only|--branches-only] [--check]\n  \
         crisp pipeview <workload> [--crisp] [-n INSTRS] [--from SEQ] [--len COUNT]\n  \
         crisp obs summarize <FILE...>\n  \
         crisp obs hotspots <BENCH.json...>\n  \
         crisp obs spans <spans.jsonl...>\n  \
         crisp cache stats|verify|gc|evict <KEY> --store DIR [--max-age-days D] [--max-entries N]\n  \
         crisp submit <TARGET...> --addr HOST:PORT [--fast|--tiny] [--workloads A,B,C]\n  \
         \x20                 [--prefetcher SPEC]\n  \
         crisp status <JOB> --addr HOST:PORT\n  \
         crisp result <JOB> --addr HOST:PORT\n  \
         crisp watch <JOB> --addr HOST:PORT [--interval-ms MS] [--follow]\n\
         exit codes: 0 ok, 2 usage, 3 unknown workload, 4 bad config, 5 runtime failure\n{}",
        workload_listing()
    )
}

struct Args {
    positional: Vec<String>,
    flags: Vec<String>,
    n: u64,
    from: Option<u64>,
    len: Option<u64>,
    out: Option<String>,
    scheduler: SchedulerKind,
    pipe_trace: Option<String>,
    trace_from: Option<u64>,
    trace_to: Option<u64>,
    trace_pc: Option<u64>,
    stalls: Option<usize>,
    store: Option<String>,
    max_age_days: Option<f64>,
    max_entries: Option<usize>,
    addr: Option<String>,
    workloads: Option<Vec<String>>,
    prefetcher: Option<String>,
    interval_ms: u64,
}

impl Args {
    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Rejects flags a subcommand does not understand — a typo must not
    /// silently fall through to default behaviour.
    fn allow_flags(&self, cmd: &str, allowed: &[&str]) -> Result<(), Failure> {
        for f in &self.flags {
            if !allowed.contains(&f.as_str()) {
                return Err(Failure::usage(format!(
                    "unknown flag for `crisp {cmd}`: {f}"
                )));
            }
        }
        Ok(())
    }
}

fn parse(args: &[String]) -> Result<Args, Failure> {
    let mut out = Args {
        positional: Vec::new(),
        flags: Vec::new(),
        n: 200_000,
        from: None,
        len: None,
        out: None,
        scheduler: SchedulerKind::OldestReadyFirst,
        pipe_trace: None,
        trace_from: None,
        trace_to: None,
        trace_pc: None,
        stalls: None,
        store: None,
        max_age_days: None,
        max_entries: None,
        addr: None,
        workloads: None,
        prefetcher: None,
        interval_ms: 500,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| Failure::usage(format!("{name} requires a value")))
        };
        match a.as_str() {
            "-n" => {
                let v = value("-n")?;
                out.n = v
                    .parse()
                    .map_err(|_| Failure::usage(format!("-n expects a count, got `{v}`")))?;
            }
            "--from" => {
                let v = value("--from")?;
                out.from = Some(v.parse().map_err(|_| {
                    Failure::usage(format!("--from expects a sequence number, got `{v}`"))
                })?);
            }
            "--len" => {
                let v = value("--len")?;
                out.len =
                    Some(v.parse().map_err(|_| {
                        Failure::usage(format!("--len expects a count, got `{v}`"))
                    })?);
            }
            "-o" => out.out = Some(value("-o")?.clone()),
            "--scheduler" => {
                let v = value("--scheduler")?;
                out.scheduler = match v.as_str() {
                    "crisp" => SchedulerKind::Crisp,
                    "oldest" => SchedulerKind::OldestReadyFirst,
                    "random" => SchedulerKind::RandomReady,
                    other => {
                        return Err(Failure::usage(format!(
                            "--scheduler expects crisp|oldest|random, got `{other}`"
                        )));
                    }
                };
            }
            "--pipe-trace" => out.pipe_trace = Some(value("--pipe-trace")?.clone()),
            "--trace-from" => {
                let v = value("--trace-from")?;
                out.trace_from = Some(v.parse().map_err(|_| {
                    Failure::usage(format!("--trace-from expects a cycle, got `{v}`"))
                })?);
            }
            "--trace-to" => {
                let v = value("--trace-to")?;
                out.trace_to = Some(v.parse().map_err(|_| {
                    Failure::usage(format!("--trace-to expects a cycle, got `{v}`"))
                })?);
            }
            "--trace-pc" => {
                let v = value("--trace-pc")?;
                out.trace_pc = Some(parse_pc(v)?);
            }
            "--stalls" => {
                let v = value("--stalls")?;
                out.stalls = Some(v.parse::<usize>().ok().filter(|k| *k > 0).ok_or_else(|| {
                    Failure::usage(format!("--stalls expects a positive count, got `{v}`"))
                })?);
            }
            "--store" => out.store = Some(value("--store")?.clone()),
            "--addr" => out.addr = Some(value("--addr")?.clone()),
            "--workloads" => {
                let v = value("--workloads")?;
                out.workloads = Some(
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--prefetcher" => {
                out.prefetcher = Some(value("--prefetcher")?.to_string());
            }
            "--interval-ms" => {
                let v = value("--interval-ms")?;
                out.interval_ms = v.parse::<u64>().ok().filter(|ms| *ms > 0).ok_or_else(|| {
                    Failure::usage(format!(
                        "--interval-ms expects positive milliseconds, got `{v}`"
                    ))
                })?;
            }
            "--max-age-days" => {
                let v = value("--max-age-days")?;
                out.max_age_days = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|d| d.is_finite() && *d >= 0.0)
                        .ok_or_else(|| {
                            Failure::usage(format!("--max-age-days expects days, got `{v}`"))
                        })?,
                );
            }
            "--max-entries" => {
                let v = value("--max-entries")?;
                out.max_entries = Some(v.parse::<usize>().map_err(|_| {
                    Failure::usage(format!("--max-entries expects a count, got `{v}`"))
                })?);
            }
            f if f.starts_with('-') => out.flags.push(f.to_string()),
            p => out.positional.push(p.to_string()),
        }
    }
    Ok(out)
}

/// Parses a PC argument: hex with a `0x` prefix, decimal otherwise.
fn parse_pc(v: &str) -> Result<u64, Failure> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| {
        Failure::usage(format!(
            "--trace-pc expects a PC (hex or decimal), got `{v}`"
        ))
    })
}

fn input_of(args: &Args) -> Input {
    if args.has("--ref") {
        Input::Ref
    } else {
        Input::Train
    }
}

fn workload_arg(args: &Args, cmd: &str) -> Result<String, Failure> {
    match args.positional.as_slice() {
        [name] => Ok(name.clone()),
        [] => Err(Failure::usage(format!(
            "`crisp {cmd}` needs a workload name\n{}",
            workload_listing()
        ))),
        extra => Err(Failure::usage(format!(
            "`crisp {cmd}` takes one workload, got: {}",
            extra.join(" ")
        ))),
    }
}

fn build_workload(name: &str, input: Input) -> Result<crisp_core::Workload, Failure> {
    build(name, input).map_err(|e| Failure::from(CrispError::from(e)))
}

fn base_sim_config(args: &Args) -> Result<SimConfig, Failure> {
    let mut cfg = SimConfig::skylake();
    cfg.check_invariants = args.has("--check");
    cfg.validate().map_err(CrispError::from)?;
    Ok(cfg)
}

fn run(cmd: &str, args: &Args) -> Result<(), Failure> {
    match cmd {
        "list" => {
            args.allow_flags(cmd, &[])?;
            let mut t = Table::new(vec!["workload", "reproduces"]);
            for w in crisp_core::build_all(Input::Train) {
                t.row(vec![w.name.to_string(), w.description.to_string()]);
            }
            println!("{t}");
            Ok(())
        }
        "trace" => {
            args.allow_flags(cmd, &["--ref"])?;
            let name = workload_arg(args, cmd)?;
            let w = build_workload(&name, input_of(args))?;
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let stats = trace.stats(&w.program);
            println!("{name}: {stats}");
            if let Some(path) = &args.out {
                trace.save(path).map_err(|e| Failure {
                    code: EXIT_RUNTIME,
                    message: format!("failed to write {path}: {e}"),
                })?;
                println!("wrote {path} ({} records)", trace.len());
            }
            Ok(())
        }
        "profile" => {
            args.allow_flags(cmd, &["--check"])?;
            let name = workload_arg(args, cmd)?;
            let w = build_workload(&name, Input::Train)?;
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let mut cfg = base_sim_config(args)?;
            cfg.collect_pc_stats = true;
            let res = Simulator::try_new(cfg)?.try_run(&w.program, &trace, None)?;
            let summary = ProfileSummary::from_result(&res);
            println!(
                "{name}: IPC {:.3}, load fraction {:.2}, LLC load MPKI {:.2}, branch MPKI {:.2}",
                summary.ipc,
                summary.load_fraction,
                res.llc_load_mpki(),
                res.branch_mpki()
            );
            let classifier = ClassifierConfig::default();
            let mut t = Table::new(vec!["load pc", "miss ratio", "AMAT", "MLP", "miss share"]);
            for d in classify_loads(&res, &classifier) {
                t.row(vec![
                    format!("{}", d.pc),
                    format!("{:.2}", d.llc_miss_ratio),
                    format!("{:.0}", d.amat),
                    format!("{:.1}", d.mlp),
                    format!("{:.2}", d.miss_contribution),
                ]);
            }
            println!("\ndelinquent loads:\n{t}");
            let mut t = Table::new(vec!["branch pc", "mispredict ratio", "execs"]);
            for b in classify_branches(&res, &classifier) {
                t.row(vec![
                    format!("{}", b.pc),
                    format!("{:.2}", b.mispredict_ratio),
                    format!("{}", b.execs),
                ]);
            }
            println!("hard branches:\n{t}");
            Ok(())
        }
        "simulate" => {
            args.allow_flags(cmd, &["--ref", "--check"])?;
            if args.pipe_trace.is_none()
                && (args.trace_from.is_some() || args.trace_to.is_some() || args.trace_pc.is_some())
            {
                return Err(Failure::usage(
                    "--trace-from/--trace-to/--trace-pc filter a --pipe-trace export; \
                     pass --pipe-trace FILE",
                ));
            }
            let name = workload_arg(args, cmd)?;
            let w = build_workload(&name, input_of(args))?;
            let trace = Emulator::new(&w.program, w.memory.clone()).run(args.n);
            let mut cfg = base_sim_config(args)?.with_scheduler(args.scheduler);
            if args.pipe_trace.is_some() {
                // Enough ring for the tail of any CLI-scale run: the
                // export keeps the newest events when the ring wraps.
                cfg.tracer_capacity = Some(1 << 18);
            }
            cfg.stall_attribution = args.stalls.is_some();
            // A bare scheduler swap without annotation: criticality comes
            // from the pipeline; here everything-critical approximates it.
            let critical = vec![true; w.program.len()];
            let map = (args.scheduler == SchedulerKind::Crisp).then_some(critical.as_slice());
            let res = Simulator::try_new(cfg)?.try_run(&w.program, &trace, map)?;
            println!(
                "{name} [{:?}]: IPC {:.3} over {} cycles; ROB-head stalls {:.1}%, \
                 branch MPKI {:.2}, LLC load MPKI {:.2}",
                args.scheduler,
                res.ipc(),
                res.cycles,
                res.rob_head_stall_cycles as f64 / res.cycles.max(1) as f64 * 100.0,
                res.branch_mpki(),
                res.llc_load_mpki()
            );
            if let Some(path) = &args.pipe_trace {
                let filter = TraceFilter {
                    min_cycle: args.trace_from.unwrap_or(0),
                    max_cycle: args.trace_to.unwrap_or(u64::MAX),
                    pc: args.trace_pc,
                };
                let events = res.tracer.events();
                let rendered = render_kanata(&events, &filter);
                std::fs::write(path, &rendered).map_err(|e| Failure {
                    code: EXIT_RUNTIME,
                    message: format!("failed to write {path}: {e}"),
                })?;
                println!(
                    "wrote {path} ({} recorded events, {} trace lines)",
                    events.len(),
                    rendered.lines().count().saturating_sub(1)
                );
            }
            if let Some(k) = args.stalls {
                println!("\nstall attribution (top {k} PCs):");
                print!("{}", res.stall_table.render_top_k(k));
            }
            Ok(())
        }
        "obs" => {
            args.allow_flags(cmd, &[])?;
            let (sub, files) = args.positional.split_first().ok_or_else(|| {
                Failure::usage("`crisp obs` needs a subcommand: summarize | hotspots | spans")
            })?;
            if files.is_empty() {
                return Err(Failure::usage(format!(
                    "`crisp obs {sub}` needs at least one input file"
                )));
            }
            let read = |path: &String| {
                std::fs::read_to_string(path).map_err(|e| Failure {
                    code: EXIT_RUNTIME,
                    message: format!("failed to read {path}: {e}"),
                })
            };
            match sub.as_str() {
                "summarize" => {
                    for (i, path) in files.iter().enumerate() {
                        let samples = parse_jsonl(&read(path)?).map_err(|e| Failure {
                            code: EXIT_RUNTIME,
                            message: format!("{path}: {e}"),
                        })?;
                        if i > 0 {
                            println!();
                        }
                        println!("{path}:");
                        print!("{}", summarize(&samples));
                    }
                    Ok(())
                }
                "hotspots" => {
                    // Host-time attribution from a sim-bench report
                    // (BENCH_9.json) or any JSON file carrying a
                    // `hostprof` object.
                    for (i, path) in files.iter().enumerate() {
                        let doc =
                            crisp_harness::json::parse(&read(path)?).map_err(|e| Failure {
                                code: EXIT_RUNTIME,
                                message: format!("{path}: {e}"),
                            })?;
                        let report = hostprof_from_value(&doc).ok_or_else(|| Failure {
                            code: EXIT_RUNTIME,
                            message: format!("{path}: no hostprof object found"),
                        })?;
                        if i > 0 {
                            println!();
                        }
                        println!("{path}:");
                        print!("{}", report.render());
                    }
                    Ok(())
                }
                "spans" => {
                    // Cross-process span tree from a job's spans.jsonl
                    // (<data>/jobs/<id>/spans.jsonl under crisp-serve).
                    for (i, path) in files.iter().enumerate() {
                        let spans = crisp_harness::load_spans(&read(path)?);
                        if spans.is_empty() {
                            return Err(Failure {
                                code: EXIT_RUNTIME,
                                message: format!("{path}: no spans found"),
                            });
                        }
                        if i > 0 {
                            println!();
                        }
                        println!("{path}:");
                        print!("{}", crisp_obs::render_spans(&spans));
                    }
                    Ok(())
                }
                other => Err(Failure::usage(format!(
                    "unknown `crisp obs` subcommand: {other} (expected: summarize | hotspots | spans)"
                ))),
            }
        }
        "pipeview" => {
            args.allow_flags(cmd, &["--crisp"])?;
            let name = workload_arg(args, cmd)?;
            let w = build_workload(&name, Input::Train)?;
            let n = args.n.min(20_000);
            let trace = Emulator::new(&w.program, w.memory.clone()).run(n);
            let mut cfg = SimConfig::skylake();
            cfg.record_pipeview = true;
            cfg.collect_pc_stats = false;
            let use_crisp = args.has("--crisp");
            if use_crisp {
                cfg.scheduler = SchedulerKind::Crisp;
            }
            let critical = vec![true; w.program.len()];
            let map = use_crisp.then_some(critical.as_slice());
            let res = Simulator::try_new(cfg)?.try_run(&w.program, &trace, map)?;
            let from = args.from.unwrap_or(n / 2);
            let len = args.len.unwrap_or(40);
            println!(
                "{name} [{}] seq {from}..{} (f=fetch d=dispatch-wait i=issue ==execute .=await-retire r=retire)\n",
                if use_crisp { "CRISP" } else { "OOO" },
                from + len
            );
            print!("{}", res.pipeview.render(from, from + len));
            Ok(())
        }
        "pipeline" => {
            args.allow_flags(
                cmd,
                &["--fast", "--loads-only", "--branches-only", "--check"],
            )?;
            if args.has("--loads-only") && args.has("--branches-only") {
                return Err(Failure::usage(
                    "--loads-only and --branches-only are mutually exclusive",
                ));
            }
            let name = workload_arg(args, cmd)?;
            let mut cfg = if args.has("--fast") {
                PipelineConfig::quick()
            } else {
                PipelineConfig::paper()
            };
            if args.has("--loads-only") {
                cfg.mode = SliceMode::LoadsOnly;
            }
            if args.has("--branches-only") {
                cfg.mode = SliceMode::BranchesOnly;
            }
            cfg.sim.check_invariants = args.has("--check");
            let r = run_crisp_pipeline(&name, &cfg)?;
            println!(
                "{name}: baseline IPC {:.3} -> CRISP IPC {:.3} ({:+.2}%); \
                 {} delinquent loads, {} hard branches, {} tagged instructions \
                 ({:.1}% static, {:.2}% dynamic footprint overhead)",
                r.baseline.ipc(),
                r.crisp.ipc(),
                r.speedup_pct(),
                r.delinquent.len(),
                r.hard_branches.len(),
                r.map.count(),
                r.map.static_ratio() * 100.0,
                r.footprint.dynamic_overhead_pct()
            );
            Ok(())
        }
        "cache" => {
            args.allow_flags(cmd, &[])?;
            run_cache(args)
        }
        "submit" | "status" | "result" | "watch" => run_serve(cmd, args),
        other => Err(Failure::usage(format!(
            "unknown subcommand: {other}\n{}",
            usage_text()
        ))),
    }
}

/// Rebuilds a [`crisp_obs::HostProfReport`] from a sim-bench JSON
/// document: the `hostprof` member if present, else the document
/// itself. Unknown phase names are ignored (forward compatibility).
fn hostprof_from_value(doc: &crisp_harness::json::Value) -> Option<crisp_obs::HostProfReport> {
    use crisp_harness::json::Value;
    let node = doc.get("hostprof").unwrap_or(doc);
    let Some(Value::Obj(phases)) = node.get("phase_ns") else {
        return None;
    };
    let count = |k: &str| node.get(k).and_then(Value::as_u64).unwrap_or(0);
    let mut report = crisp_obs::HostProfReport {
        enabled: node.get("enabled") != Some(&Value::Bool(false)),
        cycles: count("cycles"),
        retired: count("retired"),
        rs_slots_scanned: count("rs_slots_scanned"),
        age_compares: count("age_compares"),
        lsq_probes: count("lsq_probes"),
        mshr_probes: count("mshr_probes"),
        ..crisp_obs::HostProfReport::default()
    };
    for (name, ns) in phases {
        if let Some(ns) = ns.as_u64() {
            report.set_phase_ns(name, ns);
        }
    }
    Some(report)
}

/// `crisp cache stats|verify|gc|evict` — operate on a content-addressed
/// result store created by `crisp-bench --store DIR`.
fn run_cache(args: &Args) -> Result<(), Failure> {
    let store_failure = |e: crisp_store::StoreError| Failure {
        code: EXIT_RUNTIME,
        message: format!("cache: {e}"),
    };
    let (sub, rest) = args.positional.split_first().ok_or_else(|| {
        Failure::usage("`crisp cache` needs a subcommand: stats, verify, gc, evict")
    })?;
    let dir = args
        .store
        .as_ref()
        .ok_or_else(|| Failure::usage(format!("`crisp cache {sub}` needs --store DIR")))?;
    let store = crisp_store::Store::open(std::path::Path::new(dir)).map_err(store_failure)?;
    match sub.as_str() {
        "stats" => {
            if !rest.is_empty() {
                return Err(Failure::usage("`crisp cache stats` takes no arguments"));
            }
            let s = store.stats().map_err(store_failure)?;
            let mut t = Table::new(vec!["metric", "value"]);
            t.row(vec!["entries".into(), s.entries.to_string()]);
            t.row(vec!["bytes".into(), s.bytes.to_string()]);
            t.row(vec!["recorded hits".into(), s.hits.to_string()]);
            t.row(vec!["quarantined".into(), s.quarantined.to_string()]);
            t.row(vec!["tmp debris".into(), s.debris.to_string()]);
            println!("{dir}:\n{t}");
            Ok(())
        }
        "verify" => {
            if !rest.is_empty() {
                return Err(Failure::usage("`crisp cache verify` takes no arguments"));
            }
            let r = store.verify().map_err(store_failure)?;
            println!(
                "{dir}: {} entr{} checked, {} ok, {} quarantined",
                r.checked,
                if r.checked == 1 { "y" } else { "ies" },
                r.ok,
                r.quarantined.len()
            );
            if r.quarantined.is_empty() {
                return Ok(());
            }
            // A dirty scrub is a runtime failure so CI can gate on it.
            let mut message = String::new();
            for (path, err) in &r.quarantined {
                message.push_str(&format!("quarantined {}: {err}\n", path.display()));
            }
            message.push_str("cache verify: store had corrupt entries");
            Err(Failure {
                code: EXIT_RUNTIME,
                message,
            })
        }
        "gc" => {
            if !rest.is_empty() {
                return Err(Failure::usage("`crisp cache gc` takes no arguments"));
            }
            let policy = crisp_store::GcPolicy {
                max_age: args
                    .max_age_days
                    .map(|d| std::time::Duration::from_secs_f64(d * 86_400.0)),
                max_entries: args.max_entries,
            };
            if policy.max_age.is_none() && policy.max_entries.is_none() {
                return Err(Failure::usage(
                    "`crisp cache gc` needs --max-age-days and/or --max-entries",
                ));
            }
            let r = store.gc(policy).map_err(store_failure)?;
            println!(
                "{dir}: {} scanned, {} evicted, {} bytes reclaimed",
                r.scanned, r.evicted, r.reclaimed_bytes
            );
            Ok(())
        }
        "evict" => {
            let [key] = rest else {
                return Err(Failure::usage("`crisp cache evict` takes one KEY (hex)"));
            };
            let key = crisp_store::parse_key(key)
                .ok_or_else(|| Failure::usage(format!("not a store key: `{key}`")))?;
            // Evicting an absent key succeeds: the goal state is reached.
            let removed = store.evict(key);
            println!(
                "{key:032x}: {}",
                if removed { "evicted" } else { "not present" }
            );
            Ok(())
        }
        other => Err(Failure::usage(format!(
            "unknown `crisp cache` subcommand: {other} (expected: stats, verify, gc, evict)"
        ))),
    }
}

/// `crisp submit|status|result|watch` — the job-API client side of a
/// `crisp-serve` daemon. Transient failures retry with bounded jittered
/// backoff inside [`crisp_serve::Client`]; hard failures exit 5.
fn run_serve(cmd: &str, args: &Args) -> Result<(), Failure> {
    use crisp_harness::json::Value;
    use crisp_serve::{Client, ClientConfig, SubmitRequest};

    let addr = args
        .addr
        .as_ref()
        .ok_or_else(|| Failure::usage(format!("`crisp {cmd}` needs --addr HOST:PORT")))?;
    let client = Client::new(ClientConfig {
        addr: addr.clone(),
        ..ClientConfig::default()
    });
    let api_failure = |e: crisp_serve::ClientError| Failure {
        code: EXIT_RUNTIME,
        message: format!("{cmd}: {e}"),
    };
    let field = |v: &Value, name: &str| {
        v.get(name)
            .map(|f| match f {
                Value::Str(s) => s.clone(),
                other => other.encode(),
            })
            .unwrap_or_else(|| "?".to_string())
    };
    let job_arg = || -> Result<String, Failure> {
        match args.positional.as_slice() {
            [id] => Ok(id.clone()),
            _ => Err(Failure::usage(format!(
                "`crisp {cmd}` takes one job id (32 hex digits)"
            ))),
        }
    };
    // Prints a finished job's result document; failed jobs exit 5 so
    // scripts and CI can gate on job health.
    let print_result = |v: &Value| -> Result<(), Failure> {
        let state = field(v, "state");
        eprintln!(
            "job {}: {state}, {} completed, {} failed, store {} hit(s) / {} computed",
            field(v, "id"),
            field(v, "completed"),
            field(v, "failed"),
            field(v, "store_hits"),
            field(v, "store_computed"),
        );
        let rendered = field(v, "rendered");
        if !rendered.is_empty() && rendered != "?" {
            print!("{rendered}");
        }
        if state == "failed" {
            return Err(Failure {
                code: EXIT_RUNTIME,
                message: format!("job finished failed: {}", field(v, "error")),
            });
        }
        Ok(())
    };

    match cmd {
        "submit" => {
            args.allow_flags(cmd, &["--fast", "--tiny"])?;
            if args.positional.is_empty() {
                return Err(Failure::usage(
                    "`crisp submit` needs at least one target (e.g. fig11, table1)",
                ));
            }
            let scale = if args.has("--tiny") {
                "tiny"
            } else if args.has("--fast") {
                "fast"
            } else {
                "full"
            };
            let ack = client
                .submit(&SubmitRequest {
                    targets: args.positional.clone(),
                    workloads: args.workloads.clone(),
                    scale: scale.to_string(),
                    prefetcher: args.prefetcher.clone(),
                })
                .map_err(api_failure)?;
            println!(
                "job {} {} ({} cell(s), {} warm in store{})",
                field(&ack, "id"),
                field(&ack, "state"),
                field(&ack, "cells"),
                field(&ack, "warm_cells"),
                if ack.get("coalesced") == Some(&Value::Bool(true)) {
                    ", coalesced onto existing job"
                } else {
                    ""
                }
            );
            Ok(())
        }
        "status" => {
            args.allow_flags(cmd, &[])?;
            let status = client.status(&job_arg()?).map_err(api_failure)?;
            println!("{}", status.encode());
            Ok(())
        }
        "result" => {
            args.allow_flags(cmd, &[])?;
            let id = job_arg()?;
            match client.result(&id).map_err(api_failure)? {
                Some(v) => print_result(&v),
                None => {
                    println!("job {id}: still pending (poll again or use `crisp watch`)");
                    Ok(())
                }
            }
        }
        "watch" => {
            args.allow_flags(cmd, &["--follow"])?;
            let id = job_arg()?;
            let follow = args.has("--follow");
            // Daemon restarts are survivable: transient failures (reset,
            // refused, drain) reconnect with jittered backoff and resume
            // from the last seen state. Only a long unbroken run of
            // failures — or a hard 4xx — exits nonzero.
            let backoff = crisp_harness::RetryPolicy {
                max_retries: 30,
                base: std::time::Duration::from_millis(200),
                cap: std::time::Duration::from_secs(5),
            };
            let seed = crisp_harness::fnv1a64(&id);
            let finish = || -> Result<(), Failure> {
                let v = client
                    .result(&id)
                    .map_err(api_failure)?
                    .ok_or_else(|| Failure {
                        code: EXIT_RUNTIME,
                        message: format!("job {id} finished but its result is missing"),
                    })?;
                print_result(&v)
            };
            let mut consecutive: u32 = 0;
            let mut last = String::new();
            let mut cursor = 0usize; // event lines already streamed
            loop {
                let transient = if follow {
                    match client.follow(&id, cursor, &mut |event: &Value| {
                        println!("{}", event.encode());
                    }) {
                        Ok((delivered, ended)) => {
                            cursor += delivered;
                            consecutive = 0;
                            if ended {
                                return finish();
                            }
                            // Dropped mid-stream: reconnect from cursor.
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            None
                        }
                        Err(e @ crisp_serve::ClientError::Rejected { .. }) => {
                            return Err(api_failure(e))
                        }
                        Err(e) => Some(e.to_string()),
                    }
                } else {
                    match client.status(&id) {
                        Ok(status) => {
                            consecutive = 0;
                            let state = field(&status, "state");
                            if state != last {
                                eprintln!("job {id}: {state}");
                                last = state.clone();
                            }
                            if state == "done" || state == "failed" {
                                return finish();
                            }
                            std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
                            None
                        }
                        Err(e @ crisp_serve::ClientError::Rejected { .. }) => {
                            return Err(api_failure(e))
                        }
                        Err(e) => Some(e.to_string()),
                    }
                };
                if let Some(why) = transient {
                    consecutive += 1;
                    if consecutive > backoff.max_retries {
                        return Err(Failure {
                            code: EXIT_RUNTIME,
                            message: format!(
                                "watch: gave up after {consecutive} reconnect attempts: {why}"
                            ),
                        });
                    }
                    eprintln!("job {id}: daemon unreachable ({why}); reconnecting");
                    std::thread::sleep(backoff.delay(consecutive, seed));
                }
            }
        }
        _ => unreachable!("run_serve called for {cmd}"),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage_text());
        return ExitCode::from(EXIT_USAGE);
    };
    let args = match parse(rest) {
        Ok(a) => a,
        Err(f) => {
            eprintln!("{}", f.message);
            return ExitCode::from(f.code);
        }
    };
    match run(cmd, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.message);
            ExitCode::from(f.code)
        }
    }
}
