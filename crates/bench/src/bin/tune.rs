//! Internal tuning tool: prints per-workload pipeline diagnostics.
use crisp_bench::ExperimentScale;
use crisp_core::{run_crisp_pipeline, PipelineConfig, SliceMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        crisp_core::all_names().to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let _ = ExperimentScale::Fast;
    let mut cfg = PipelineConfig {
        train_instructions: 150_000,
        eval_instructions: 250_000,
        ..PipelineConfig::paper()
    };
    if let Ok(f) = std::env::var("CP_FRAC") {
        cfg.critical_path_fraction = f.parse().expect("CP_FRAC");
    }
    if let Ok(b) = std::env::var("BUDGET") {
        cfg.annotator.max_dynamic_ratio = b.parse().expect("BUDGET");
    }
    for name in names {
        match run_crisp_pipeline(name, &cfg) {
            Ok(r) => {
                println!(
                    "{:12} base={:.3} crisp={:.3} gain={:+.2}% | del={} br={} tagged={} ({:.0}%stat) | bmpki={:.1} llcmpki={:.1} robstall={:.0}%",
                    r.name,
                    r.baseline.ipc(),
                    r.crisp.ipc(),
                    r.speedup_pct(),
                    r.delinquent.len(),
                    r.hard_branches.len(),
                    r.map.count(),
                    r.map.static_ratio() * 100.0,
                    r.baseline.branch_mpki(),
                    r.baseline.llc_load_mpki(),
                    r.baseline.rob_head_stall_cycles as f64 / r.baseline.cycles as f64 * 100.0,
                );
                for d in r.delinquent.iter().take(4) {
                    println!(
                        "    load pc={} miss_ratio={:.2} amat={:.0} mlp={:.1} contrib={:.2}",
                        d.pc, d.llc_miss_ratio, d.amat, d.mlp, d.miss_contribution
                    );
                }
                if std::env::var("ABLATE").is_ok() {
                    for mode in [SliceMode::LoadsOnly, SliceMode::BranchesOnly] {
                        let c2 = PipelineConfig {
                            mode,
                            ..cfg.clone()
                        };
                        let r2 = run_crisp_pipeline(name, &c2).expect("ablate");
                        println!("    mode {:?}: {:+.2}%", mode, r2.speedup_pct());
                    }
                }
            }
            Err(e) => println!("{name}: ERROR {e}"),
        }
    }
}
