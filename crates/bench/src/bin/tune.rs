//! Internal tuning tool: prints per-workload pipeline diagnostics.
//!
//! Environment knobs: `CP_FRAC` (critical-path keep fraction), `BUDGET`
//! (annotator dynamic-ratio budget), `ABLATE` (set to also run the
//! loads-only / branches-only slice modes).
//!
//! Exit codes follow the `crisp` CLI convention: 0 = every workload
//! succeeded, 3 = unknown workload, 4 = bad configuration (including a
//! malformed environment variable), 5 = runtime failure. Per-workload
//! errors are printed and the run continues; the exit code reflects the
//! first error encountered.

use crisp_core::{run_crisp_pipeline, ConfigError, CrispError, PipelineConfig, SliceMode};
use std::process::ExitCode;

const EXIT_UNKNOWN_WORKLOAD: u8 = 3;
const EXIT_BAD_CONFIG: u8 = 4;
const EXIT_RUNTIME: u8 = 5;

fn exit_code_for(e: &CrispError) -> u8 {
    match e {
        CrispError::UnknownWorkload(_) => EXIT_UNKNOWN_WORKLOAD,
        CrispError::Config(_) => EXIT_BAD_CONFIG,
        _ => EXIT_RUNTIME,
    }
}

/// Parses an `f64` environment override, naming the variable on failure.
fn env_f64(var: &'static str) -> Result<Option<f64>, CrispError> {
    match std::env::var(var) {
        Ok(raw) => raw.trim().parse::<f64>().map(Some).map_err(|_| {
            CrispError::Config(ConfigError::new(
                var,
                format!("expects a number, got `{raw}`"),
            ))
        }),
        Err(_) => Ok(None),
    }
}

fn build_config() -> Result<PipelineConfig, CrispError> {
    let mut cfg = PipelineConfig {
        train_instructions: 150_000,
        eval_instructions: 250_000,
        ..PipelineConfig::paper()
    };
    if let Some(f) = env_f64("CP_FRAC")? {
        cfg.critical_path_fraction = f;
    }
    if let Some(b) = env_f64("BUDGET")? {
        cfg.annotator.max_dynamic_ratio = b;
    }
    cfg.validate()?;
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        crisp_core::all_names().to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let cfg = match build_config() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("tune: {e}");
            return ExitCode::from(exit_code_for(&e));
        }
    };
    let mut first_error: Option<u8> = None;
    let mut record = |e: &CrispError| {
        first_error.get_or_insert(exit_code_for(e));
    };
    for name in names {
        match run_crisp_pipeline(name, &cfg) {
            Ok(r) => {
                println!(
                    "{:12} base={:.3} crisp={:.3} gain={:+.2}% | del={} br={} tagged={} ({:.0}%stat) | bmpki={:.1} llcmpki={:.1} robstall={:.0}%",
                    r.name,
                    r.baseline.ipc(),
                    r.crisp.ipc(),
                    r.speedup_pct(),
                    r.delinquent.len(),
                    r.hard_branches.len(),
                    r.map.count(),
                    r.map.static_ratio() * 100.0,
                    r.baseline.branch_mpki(),
                    r.baseline.llc_load_mpki(),
                    r.baseline.rob_head_stall_cycles as f64 / r.baseline.cycles as f64 * 100.0,
                );
                for d in r.delinquent.iter().take(4) {
                    println!(
                        "    load pc={} miss_ratio={:.2} amat={:.0} mlp={:.1} contrib={:.2}",
                        d.pc, d.llc_miss_ratio, d.amat, d.mlp, d.miss_contribution
                    );
                }
                if std::env::var("ABLATE").is_ok() {
                    for mode in [SliceMode::LoadsOnly, SliceMode::BranchesOnly] {
                        let c2 = PipelineConfig {
                            mode,
                            ..cfg.clone()
                        };
                        match run_crisp_pipeline(name, &c2) {
                            Ok(r2) => println!("    mode {:?}: {:+.2}%", mode, r2.speedup_pct()),
                            Err(e) => {
                                println!("    mode {mode:?}: ERROR {e}");
                                record(&e);
                            }
                        }
                    }
                }
            }
            Err(e) => {
                println!("{name}: ERROR {e}");
                record(&e);
            }
        }
    }
    match first_error {
        None => ExitCode::SUCCESS,
        Some(code) => ExitCode::from(code),
    }
}
