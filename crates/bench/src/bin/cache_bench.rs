//! `cache-bench` — seeds the result-store performance trajectory.
//!
//! Runs the fast-workload fig1 sweep twice against a fresh
//! content-addressed store — cold (every cell simulated and published)
//! then warm (every cell served from the store) — and records wall-clock
//! for both plus the warm hit rate to a JSON baseline (`BENCH_6.json`),
//! so later PRs can track cache effectiveness across the repo's history.
//!
//! ```text
//! usage: cache-bench [--out PATH] [--store DIR] [--keep-store]
//! exit codes: 0 ok, 1 warm sweep missed the cache, 2 usage error
//! ```
//!
//! The warm sweep must re-simulate zero cells; a miss is a correctness
//! failure of the store's keying or verification, not a perf blip, so it
//! fails the run.

use crisp_bench::sweep::{run_supervised_sweep, SweepConfig};
use crisp_bench::ExperimentScale;
use crisp_harness::json::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!("usage: cache-bench [--out PATH] [--store DIR] [--keep-store]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_6.json");
    let mut store: Option<PathBuf> = None;
    let mut keep_store = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            "--store" => match args.next() {
                Some(v) => store = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--keep-store" => keep_store = true,
            _ => return usage(),
        }
    }
    let store = store.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("crisp-cache-bench-{}", std::process::id()))
    });
    // The benchmark is cold-vs-warm; stale entries would corrupt it.
    std::fs::remove_dir_all(&store).ok();

    let cfg = SweepConfig {
        scale: ExperimentScale::Fast,
        targets: vec!["fig1".to_string()],
        store: Some(store.clone()),
        progress: false,
        ..SweepConfig::default()
    };

    let started = Instant::now();
    let cold = match run_supervised_sweep(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cache-bench: cold sweep failed: {e}");
            return ExitCode::from(1);
        }
    };
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let warm = match run_supervised_sweep(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cache-bench: warm sweep failed: {e}");
            return ExitCode::from(1);
        }
    };
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    if !keep_store {
        std::fs::remove_dir_all(&store).ok();
    }

    let cells = cold.report.outcomes.len();
    let hit_rate = if cells == 0 {
        0.0
    } else {
        warm.report.store_hits as f64 / cells as f64
    };
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("store-cold-vs-warm".into())),
        ("target".into(), Value::Str("fig1".into())),
        ("scale".into(), Value::Str("fast".into())),
        ("cells".into(), Value::Num(cells as f64)),
        ("cold_ms".into(), Value::Num(cold_ms)),
        ("warm_ms".into(), Value::Num(warm_ms)),
        (
            "cold_computed".into(),
            Value::Num(cold.report.store_computed as f64),
        ),
        (
            "warm_hits".into(),
            Value::Num(warm.report.store_hits as f64),
        ),
        (
            "warm_computed".into(),
            Value::Num(warm.report.store_computed as f64),
        ),
        ("warm_hit_rate".into(), Value::Num(hit_rate)),
        (
            "speedup".into(),
            Value::Num(if warm_ms > 0.0 {
                cold_ms / warm_ms
            } else {
                0.0
            }),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.encode())) {
        eprintln!("cache-bench: writing {} failed: {e}", out.display());
        return ExitCode::from(1);
    }
    eprintln!(
        "[cache-bench] {} cell(s): cold {cold_ms:.0} ms, warm {warm_ms:.0} ms, \
         warm hit rate {:.0}% -> {}",
        cells,
        hit_rate * 100.0,
        out.display()
    );

    // Identical rendered tables and a full warm hit rate are part of the
    // store's contract; enforce them here so CI catches regressions.
    if warm.rendered != cold.rendered {
        eprintln!("cache-bench: warm render differs from cold render");
        return ExitCode::from(1);
    }
    if warm.report.store_hits != cells || warm.report.store_computed != 0 {
        eprintln!(
            "cache-bench: warm sweep missed the cache ({} hit(s), {} computed of {} cell(s))",
            warm.report.store_hits, warm.report.store_computed, cells
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
