//! `pool-bench` — seeds the multi-process scaling trajectory
//! (`BENCH_8.json`).
//!
//! Runs the fast `fig1` sweep twice through the worker pool — once on a
//! single `crisp-worker` process, once on N — and records both
//! wall-clocks, so later PRs can track the pool's dispatch overhead and
//! parallel speedup across the repo's history.
//!
//! ```text
//! usage: pool-bench [--out PATH] [--workers N]
//! exit codes: 0 ok, 1 benchmark invariant broken, 2 usage error
//! ```
//!
//! The two runs must render byte-identical tables: parallel dispatch
//! order must never leak into results. Any divergence is a correctness
//! failure of the pool, not a benchmark artifact, so it fails the run.

use crisp_bench::sweep::{run_supervised_sweep, SweepConfig, SweepOutput};
use crisp_bench::ExperimentScale;
use crisp_harness::json::Value;
use crisp_harness::{PoolOptions, WorkerPool};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> std::process::ExitCode {
    eprintln!("usage: pool-bench [--out PATH] [--workers N]");
    std::process::ExitCode::from(2)
}

const TARGET: &str = "fig1";

/// One pooled sweep on `workers` processes; returns its wall-clock.
fn one_run(workers: usize) -> Result<(f64, SweepOutput), String> {
    let worker_bin = std::env::current_exe()
        .map_err(|e| format!("cannot locate own binary: {e}"))?
        .with_file_name("crisp-worker");
    let pool = Arc::new(WorkerPool::spawn(PoolOptions {
        worker_bin,
        workers,
        ..PoolOptions::default()
    })?);
    let cfg = SweepConfig {
        scale: ExperimentScale::Fast,
        targets: vec![TARGET.to_string()],
        workers,
        pool: Some(Arc::clone(&pool)),
        ..SweepConfig::default()
    };
    let started = Instant::now();
    let out = run_supervised_sweep(&cfg).map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    pool.shutdown();
    if out.report.crashed || out.degraded() {
        return Err(format!(
            "{workers}-worker sweep did not complete clean: {:?}",
            out.report.taxonomy()
        ));
    }
    Ok((wall_ms, out))
}

fn main() -> std::process::ExitCode {
    let mut out = PathBuf::from("BENCH_8.json");
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 2 => workers = v,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    // Page in the binaries and simulator tables once, off the clock, so
    // the 1-worker run does not absorb every first-touch cost.
    let warmup = SweepConfig {
        scale: ExperimentScale::Tiny,
        targets: vec![TARGET.to_string()],
        ..SweepConfig::default()
    };
    if let Err(e) = run_supervised_sweep(&warmup) {
        eprintln!("pool-bench: warm-up sweep failed: {e}");
        return std::process::ExitCode::from(1);
    }

    let (serial_ms, serial) = match one_run(1) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pool-bench: 1-worker run failed: {e}");
            return std::process::ExitCode::from(1);
        }
    };
    let (pooled_ms, pooled) = match one_run(workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pool-bench: {workers}-worker run failed: {e}");
            return std::process::ExitCode::from(1);
        }
    };

    let identical = !serial.rendered.is_empty() && serial.rendered == pooled.rendered;
    let cells = serial.report.outcomes.len();
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("pool-scaling-wall-clock".into())),
        ("target".into(), Value::Str(TARGET.into())),
        ("scale".into(), Value::Str("fast".into())),
        ("cells".into(), Value::Num(cells as f64)),
        ("workers".into(), Value::Num(workers as f64)),
        ("serial_wall_ms".into(), Value::Num(serial_ms)),
        ("pooled_wall_ms".into(), Value::Num(pooled_ms)),
        (
            "speedup".into(),
            Value::Num(if pooled_ms > 0.0 {
                serial_ms / pooled_ms
            } else {
                0.0
            }),
        ),
        ("identical_render".into(), Value::Bool(identical)),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.encode())) {
        eprintln!("pool-bench: writing {} failed: {e}", out.display());
        return std::process::ExitCode::from(1);
    }
    eprintln!(
        "[pool-bench] {cells} cell(s): 1 worker {serial_ms:.0} ms, {workers} workers {pooled_ms:.0} ms -> {}",
        out.display()
    );

    if !identical {
        eprintln!("pool-bench: pooled render differs from the 1-worker render");
        return std::process::ExitCode::from(1);
    }
    std::process::ExitCode::SUCCESS
}
