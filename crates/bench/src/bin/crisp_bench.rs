//! The supervised experiment runner: `crisp bench` with crash isolation,
//! deadlines, retries and resumable manifests.
//!
//! ```text
//! Usage: crisp-bench [OPTIONS] [TARGETS...]
//!
//! Targets: table1 fig1 fig4 fig7 fig8 fig9 fig10 fig11 fig12 ablations
//!          prefzoo all (default: all)
//!
//! Options:
//!   --fast               Fast scale (smaller sim windows)
//!   --tiny               Tiny scale (smoke runs only)
//!   --prefetcher SPEC    Override the data-prefetcher zoo for every cell:
//!                        NAME[:k=v,...] units joined with `+`, e.g.
//!                        `spp:depth=4+stream` or `none` (default:
//!                        bop+stream, the Table 1 baseline)
//!   --jobs N             Worker threads (default 1)
//!   --deadline SECS      Per-attempt wall-clock deadline (fractional ok)
//!   --max-retries K      Retries per job for transient failures (default 3)
//!   --manifest PATH      Journal every attempt to a JSONL run manifest
//!   --resume PATH        Resume an interrupted sweep from its manifest
//!                        (implies --manifest PATH; flags must match)
//!   --workloads A,B,C    Only run these workloads
//!   --checkpoint-interval CYCLES
//!                        Emit mid-run machine checkpoints roughly every
//!                        CYCLES cycles into <manifest>.ckpt.d/ so --resume
//!                        continues interrupted cells mid-workload
//!                        (requires --manifest)
//!   --audit-restore      Run the checkpoint determinism audit instead of
//!                        the sweep: checkpoint, restore, and verify
//!                        byte-identical results per workload
//!   --telemetry DIR      Write one interval-telemetry JSONL stream (plus a
//!                        top-K stall-attribution table) per simulated
//!                        sub-run into DIR (cells that drive sims directly)
//!   --pipe-trace DIR     Write one Kanata/Konata pipeline trace per
//!                        simulated sub-run into DIR
//!   --heartbeat MS       Journal each running cell's progress (cycles,
//!                        instructions, wall-clock) every MS milliseconds;
//!                        failures cite the last heartbeat
//!   --store DIR          Content-addressed result store: completed cells
//!                        are published to DIR and verified entries skip
//!                        simulation on later sweeps (corrupt entries are
//!                        quarantined and re-simulated; concurrent sweeps
//!                        coordinate via per-cell locks)
//!   --inject-panic SUB   Chaos: panic on attempt 1 of jobs whose id
//!                        contains SUB (repeatable)
//!   --inject-stall SUB   Chaos: freeze the scheduler in jobs whose id
//!                        contains SUB so the watchdog fires (repeatable)
//!   --cell-delay-ms MS   Test hook: idle this long (cancellably) at the
//!                        start of every computed cell, widening the
//!                        mid-cell window chaos tests need to hit
//!   --quiet              Suppress per-job progress lines
//! ```
//!
//! SIGTERM/SIGINT drain the sweep gracefully: queued cells stay
//! unrecorded, in-flight cells abort cooperatively (checkpointing if
//! enabled), the manifest is fsynced, and the run exits 6 with a
//! `--resume` hint — resuming completes the sweep with byte-identical
//! reports.
//!
//! Exit codes: 0 = every cell completed; 2 = usage error; 5 = supervisor
//! failure (bad manifest, injected crash fired); 6 = completed **degraded**
//! (some cells failed permanently; reports carry `[DEGRADED]` annotations
//! and a failure taxonomy — partial results were salvaged) or
//! **interrupted** by SIGTERM/SIGINT (resume with `--resume`); 7 =
//! checkpoint integrity or determinism failure (torn/mismatched
//! checkpoint state, or a restore-audit divergence — never retried,
//! because re-reading the same bytes cannot succeed).

use crisp_bench::audit::{render_audit, run_restore_audit, DEFAULT_AUDIT_WORKLOADS};
use crisp_bench::sweep::{build_jobs, run_supervised_sweep, sweep_spec, SweepConfig};
use crisp_bench::{all_targets, ExperimentScale};
use crisp_core::CrispError;
use crisp_harness::RetryPolicy;
use crisp_sim::SimError;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const EXIT_USAGE: u8 = 2;
const EXIT_SUPERVISOR: u8 = 5;
const EXIT_DEGRADED: u8 = 6;
const EXIT_CHECKPOINT: u8 = 7;

const KNOWN_TARGETS: [&str; 12] = [
    "table1",
    "fig1",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "prefzoo",
    "all",
];

fn usage() {
    eprintln!(
        "usage: crisp-bench [--fast|--tiny] [--jobs N] [--deadline SECS] [--max-retries K]\n\
         \x20                  [--manifest PATH] [--resume PATH] [--workloads A,B,C]\n\
         \x20                  [--prefetcher SPEC]\n\
         \x20                  [--checkpoint-interval CYCLES] [--audit-restore]\n\
         \x20                  [--telemetry DIR] [--pipe-trace DIR] [--heartbeat MS]\n\
         \x20                  [--store DIR] [--inject-panic SUB] [--inject-stall SUB]\n\
         \x20                  [--cell-delay-ms MS] [--quiet] [{}]",
        KNOWN_TARGETS.join("|")
    );
}

struct UsageError(String);

fn parse_args(args: &[String]) -> Result<SweepConfig, UsageError> {
    let mut cfg = SweepConfig {
        scale: ExperimentScale::Full,
        targets: Vec::new(),
        ..SweepConfig::default()
    };
    cfg.progress = true;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
                 flag: &str|
     -> Result<String, UsageError> {
        it.next()
            .cloned()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => cfg.scale = ExperimentScale::Fast,
            "--tiny" => cfg.scale = ExperimentScale::Tiny,
            "--quiet" => cfg.progress = false,
            "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                cfg.workers = v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!("--jobs expects a positive integer, got `{v}`"))
                })?;
            }
            "--deadline" => {
                let v = value(&mut it, "--deadline")?;
                let secs = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        UsageError(format!("--deadline expects positive seconds, got `{v}`"))
                    })?;
                cfg.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--max-retries" => {
                let v = value(&mut it, "--max-retries")?;
                cfg.retry = RetryPolicy {
                    max_retries: v.parse::<u32>().map_err(|_| {
                        UsageError(format!("--max-retries expects an integer, got `{v}`"))
                    })?,
                    ..RetryPolicy::default()
                };
            }
            "--manifest" => cfg.manifest = Some(PathBuf::from(value(&mut it, "--manifest")?)),
            "--resume" => {
                cfg.manifest = Some(PathBuf::from(value(&mut it, "--resume")?));
                cfg.resume = true;
            }
            "--prefetcher" => {
                let v = value(&mut it, "--prefetcher")?;
                let spec = v
                    .parse::<crisp_sim::PrefetcherSpec>()
                    .map_err(|e| UsageError(format!("--prefetcher: {e}")))?;
                // Resolve against the built-in registry now, so unknown
                // units or bad options fail as usage errors instead of
                // failing every cell mid-sweep.
                crisp_sim::PrefetcherRegistry::builtin()
                    .build(&spec)
                    .map_err(|e| UsageError(format!("--prefetcher: {e}")))?;
                cfg.prefetcher = Some(spec);
            }
            "--workloads" => {
                let v = value(&mut it, "--workloads")?;
                cfg.workloads = Some(
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--checkpoint-interval" => {
                let v = value(&mut it, "--checkpoint-interval")?;
                cfg.checkpoint_interval =
                    Some(v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        UsageError(format!(
                            "--checkpoint-interval expects a positive cycle count, got `{v}`"
                        ))
                    })?);
            }
            "--audit-restore" => cfg.audit_restore = true,
            "--telemetry" => cfg.telemetry = Some(PathBuf::from(value(&mut it, "--telemetry")?)),
            "--pipe-trace" => cfg.pipe_trace = Some(PathBuf::from(value(&mut it, "--pipe-trace")?)),
            "--heartbeat" => {
                let v = value(&mut it, "--heartbeat")?;
                let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!(
                        "--heartbeat expects positive milliseconds, got `{v}`"
                    ))
                })?;
                cfg.heartbeat = Some(Duration::from_millis(ms));
            }
            "--store" => cfg.store = Some(PathBuf::from(value(&mut it, "--store")?)),
            "--inject-panic" => cfg.chaos.panic_once.push(value(&mut it, "--inject-panic")?),
            "--inject-stall" => cfg.chaos.stall.push(value(&mut it, "--inject-stall")?),
            "--cell-delay-ms" => {
                let v = value(&mut it, "--cell-delay-ms")?;
                let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!(
                        "--cell-delay-ms expects positive milliseconds, got `{v}`"
                    ))
                })?;
                cfg.cell_delay = Some(Duration::from_millis(ms));
            }
            other if other.starts_with('-') => {
                return Err(UsageError(format!("unknown flag: {other}")));
            }
            target => {
                if !KNOWN_TARGETS.contains(&target) {
                    return Err(UsageError(format!("unknown target: {target}")));
                }
                targets.push(target.to_string());
            }
        }
    }
    cfg.targets = if targets.is_empty() || targets.iter().any(|t| t == "all") {
        all_targets()
    } else {
        // Keep canonical render order regardless of argument order.
        all_targets()
            .into_iter()
            .filter(|t| targets.contains(t))
            .collect()
    };
    if cfg.checkpoint_interval.is_some() && cfg.manifest.is_none() && !cfg.audit_restore {
        return Err(UsageError(
            "--checkpoint-interval requires --manifest (or --resume): checkpoints live \
             next to the run manifest"
                .to_string(),
        ));
    }
    Ok(cfg)
}

/// Runs `--audit-restore` mode: the checkpoint → restore → finish
/// determinism proof over the audited workloads.
fn run_audit_mode(cfg: &SweepConfig) -> ExitCode {
    let workloads: Vec<String> = cfg.workloads.clone().unwrap_or_else(|| {
        DEFAULT_AUDIT_WORKLOADS
            .iter()
            .map(|s| s.to_string())
            .collect()
    });
    let interval = cfg
        .checkpoint_interval
        .unwrap_or(crisp_bench::audit::DEFAULT_AUDIT_INTERVAL);
    if cfg.progress {
        eprintln!(
            "[crisp-bench] audit-restore: {} workload(s), checkpoint every ~{interval} cycles",
            workloads.len()
        );
    }
    match run_restore_audit(&workloads, cfg.scale, interval) {
        Ok(lines) => {
            print!("{}", render_audit(&lines));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("crisp-bench: audit-restore FAILED: {e}");
            let checkpoint_class = matches!(
                e,
                CrispError::Checkpoint(_)
                    | CrispError::Simulation(
                        SimError::RestoreAuditDivergence { .. } | SimError::SnapshotRestore { .. }
                    )
            );
            ExitCode::from(if checkpoint_class {
                EXIT_CHECKPOINT
            } else {
                EXIT_SUPERVISOR
            })
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(UsageError(msg)) => {
            eprintln!("crisp-bench: {msg}");
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    if cfg.audit_restore {
        return run_audit_mode(&cfg);
    }

    // Graceful shutdown: SIGTERM/SIGINT cancel the stop token; in-flight
    // cells abort cooperatively and the manifest stays resumable.
    crisp_serve::signal::install();
    let stop = crisp_sim::CancelToken::new();
    crisp_serve::signal::watch(stop.clone());
    cfg.stop = Some(stop);

    if cfg.progress {
        eprintln!("[crisp-bench] sweep: {}", sweep_spec(&cfg));
    }
    let out = match run_supervised_sweep(&cfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("crisp-bench: {e}");
            return ExitCode::from(EXIT_SUPERVISOR);
        }
    };

    if out.report.crashed {
        eprintln!(
            "crisp-bench: sweep crashed mid-manifest; resume with --resume {}",
            cfg.manifest
                .as_ref()
                .map_or_else(|| "<manifest>".to_string(), |p| p.display().to_string())
        );
        return ExitCode::from(EXIT_SUPERVISOR);
    }

    if out.report.interrupted {
        eprintln!(
            "crisp-bench: interrupted by signal after {} of {} jobs; resume with --resume {}",
            out.report.completed(),
            build_jobs(&cfg).len(),
            cfg.manifest
                .as_ref()
                .map_or_else(|| "<manifest>".to_string(), |p| p.display().to_string())
        );
        return ExitCode::from(EXIT_DEGRADED);
    }

    print!("{}", out.rendered);

    let report = &out.report;
    eprintln!(
        "[crisp-bench] {} of {} jobs completed ({} restored from manifest)",
        report.completed(),
        report.outcomes.len(),
        report.resumed
    );
    if cfg.store.is_some() {
        eprintln!(
            "[crisp-bench] store: {} hit(s), {} computed, {} quarantined",
            report.store_hits, report.store_computed, report.store_quarantined
        );
    }
    if out.degraded() {
        eprintln!(
            "[crisp-bench] DEGRADED: {} job(s) failed permanently:",
            report.failed()
        );
        for (class, ids) in report.taxonomy() {
            eprintln!("[crisp-bench]   {class}: {}", ids.join(", "));
        }
        // Checkpoint-class failures get their own exit code: the state on
        // disk is unusable and no rerun under the same flags will differ.
        return ExitCode::from(if out.checkpoint_failures() {
            EXIT_CHECKPOINT
        } else {
            EXIT_DEGRADED
        });
    }
    ExitCode::SUCCESS
}
