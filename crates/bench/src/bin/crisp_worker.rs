//! `crisp-worker` — the pool's cell-execution process.
//!
//! Spawned by a [`crisp_harness::WorkerPool`] (one per pool slot), never
//! run by hand. Speaks the length-prefixed JSON frame protocol on
//! stdin/stdout (stdout carries *only* frames; all human-facing output
//! goes to stderr, where the pool's forensic tail collector keeps it):
//!
//! 1. sends `hello` with its binary semver and `RESULT_SCHEMA`, and
//!    waits for `accept` — a `refuse` (version skew) exits 3;
//! 2. for each `run` frame, rebuilds the cell from `id`/`spec`/`scale`
//!    and simulates it on a compute thread while the main thread emits
//!    `heartbeat` frames (cycles, instructions) at the requested
//!    cadence — these renew the cell's lease pool-side;
//! 3. answers `ok` (payload) or `fail` (class, error, structured
//!    detail, classified with the harness taxonomy);
//! 4. a `shutdown` frame or stdin EOF exits 0.
//!
//! Chaos hooks (driven by the pool's `extra` fields): `abort:true`
//! calls [`std::process::abort`] mid-cell — the poison-quarantine
//! path — and `cell_delay_ms` widens the mid-cell window SIGKILL chaos
//! tests aim at. `CRISP_WORKER_FAKE_VERSION` overrides the reported
//! semver so tests can exercise version-skew refusal.
//!
//! Exit codes: `0` clean shutdown, `3` refused handshake, `5` protocol
//! failure.

use crisp_bench::cells;
use crisp_bench::ExperimentScale;
use crisp_harness::json::Value;
use crisp_harness::supervisor::LeaseGuard;
use crisp_harness::{
    failure_detail, read_frame, write_frame, FailureClass, JobSpec, RunContext, RESULT_SCHEMA,
};
use crisp_sim::{CancelToken, ProgressBeacon};
use std::io::{Stdin, Stdout};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const EXIT_REFUSED: u8 = 3;
const EXIT_PROTOCOL: u8 = 5;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn send(out: &mut Stdout, frame: &Value) -> Result<(), ExitCode> {
    write_frame(out, frame).map_err(|e| {
        eprintln!("crisp-worker: frame write failed: {e}");
        ExitCode::from(EXIT_PROTOCOL)
    })
}

fn parse_scale(scale: &str) -> Option<ExperimentScale> {
    match scale {
        "tiny" => Some(ExperimentScale::Tiny),
        "fast" => Some(ExperimentScale::Fast),
        "full" => Some(ExperimentScale::Full),
        _ => None,
    }
}

fn handle_run(frame: &Value, out: &mut Stdout) -> Result<(), ExitCode> {
    let id = frame.get("id").and_then(Value::as_str).unwrap_or("");
    let spec = frame.get("spec").and_then(Value::as_str).unwrap_or("");
    let attempt = frame
        .get("attempt")
        .and_then(Value::as_u64)
        .and_then(|a| u32::try_from(a).ok())
        .unwrap_or(1);
    let heartbeat = Duration::from_millis(
        frame
            .get("heartbeat_ms")
            .and_then(Value::as_u64)
            .unwrap_or(100)
            .max(1),
    );
    let cell_delay = frame
        .get("cell_delay_ms")
        .and_then(Value::as_u64)
        .map(Duration::from_millis);
    let stall = frame.get("stall") == Some(&Value::Bool(true));
    // The poison-chaos hook: die the ugliest possible way, mid-cell.
    if frame.get("abort") == Some(&Value::Bool(true)) {
        eprintln!("crisp-worker: injected abort for {id}");
        std::process::abort();
    }
    let scale_name = frame.get("scale").and_then(Value::as_str).unwrap_or("?");
    let Some(scale) = parse_scale(scale_name) else {
        return send(
            out,
            &obj(vec![
                ("type", Value::Str("fail".to_string())),
                ("class", Value::Str(FailureClass::Config.name().to_string())),
                ("error", Value::Str(format!("unknown scale `{scale_name}`"))),
            ]),
        );
    };
    // The sweep's `--prefetcher` override rides the dispatch frame.
    let prefetcher = match frame.get("prefetcher").and_then(Value::as_str) {
        Some(spec) => match spec.parse::<crisp_sim::PrefetcherSpec>() {
            Ok(p) => Some(p),
            Err(e) => {
                return send(
                    out,
                    &obj(vec![
                        ("type", Value::Str("fail".to_string())),
                        ("class", Value::Str(FailureClass::Config.name().to_string())),
                        ("error", Value::Str(format!("bad prefetcher spec: {e}"))),
                    ]),
                );
            }
        },
        None => None,
    };

    // Span plumbing: the supervisor hands down the trace, the span log
    // path, and its cell span's id; this process hangs its `simulate`
    // span (tagged with our pid) underneath it.
    let span_scope = frame
        .get("trace")
        .and_then(Value::as_str)
        .zip(frame.get("span_path").and_then(Value::as_str))
        .map(|(trace, path)| crisp_harness::SpanScope {
            path: path.into(),
            trace: trace.to_string(),
            parent: frame
                .get("span_parent")
                .and_then(Value::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or(0),
        });

    let job = JobSpec::new(id, spec);
    let ctx = RunContext {
        attempt,
        cancel: CancelToken::new(),
        progress: ProgressBeacon::new(),
        lease: LeaseGuard::default(),
    };
    let progress = ctx.progress.clone();
    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let simulate_started_ns = crisp_harness::unix_ns();
    // Compute on a side thread; the main thread owns stdout and streams
    // heartbeats, so the pool's lease clock keeps advancing even while
    // the simulator is head-down in a long cell.
    let compute = std::thread::spawn(move || {
        // A panicking cell must still flip the done flag, or the
        // heartbeat loop below would pump a dead attempt forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(delay) = cell_delay {
                std::thread::sleep(delay);
            }
            // Mid-cell machine checkpoints and telemetry sinks stay
            // daemon-side concerns; the pool's unit of recovery is the
            // whole cell.
            cells::run_cell(&job, &ctx, scale, stall, None, None, prefetcher)
        }));
        done_flag.store(true, Ordering::SeqCst);
        result
    });
    while !done.load(Ordering::SeqCst) {
        std::thread::sleep(heartbeat);
        let (cycles, instrs) = progress.read();
        send(
            out,
            &obj(vec![
                ("type", Value::Str("heartbeat".to_string())),
                ("cycles", Value::Num(cycles as f64)),
                ("instrs", Value::Num(instrs as f64)),
            ]),
        )?;
    }
    // The outer join only fails if the thread died *outside* the
    // catch_unwind (impossible today); fold it into the same panic arm.
    let joined = compute.join().unwrap_or_else(Err);
    if let Some(scope) = &span_scope {
        scope.emit(
            &format!("simulate {id}#{attempt}"),
            &format!("worker:{}", std::process::id()),
            simulate_started_ns,
            crisp_harness::unix_ns(),
        );
    }
    let response = match joined {
        Ok(Ok(payload)) => obj(vec![
            ("type", Value::Str("ok".to_string())),
            (
                "payload",
                Value::Arr(payload.into_iter().map(Value::Num).collect()),
            ),
        ]),
        Ok(Err(e)) => {
            let mut pairs = vec![
                ("type", Value::Str("fail".to_string())),
                (
                    "class",
                    Value::Str(FailureClass::classify(&e).name().to_string()),
                ),
                ("error", Value::Str(e.to_string())),
            ];
            if let Some(detail) = failure_detail(&e) {
                pairs.push(("detail", detail));
            }
            obj(pairs)
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            obj(vec![
                ("type", Value::Str("fail".to_string())),
                ("class", Value::Str(FailureClass::Panic.name().to_string())),
                ("error", Value::Str(msg)),
            ])
        }
    };
    send(out, &response)
}

fn serve(stdin: &mut Stdin, out: &mut Stdout) -> ExitCode {
    // Handshake: introduce ourselves, then wait for the verdict.
    let version = std::env::var("CRISP_WORKER_FAKE_VERSION")
        .unwrap_or_else(|_| env!("CARGO_PKG_VERSION").to_string());
    let hello = obj(vec![
        ("type", Value::Str("hello".to_string())),
        ("version", Value::Str(version)),
        ("schema", Value::Num(f64::from(RESULT_SCHEMA))),
        ("pid", Value::Num(f64::from(std::process::id()))),
    ]);
    if let Err(code) = send(out, &hello) {
        return code;
    }
    match read_frame(stdin) {
        Ok(Some(f)) if f.get("type").and_then(Value::as_str) == Some("accept") => {}
        Ok(Some(f)) if f.get("type").and_then(Value::as_str) == Some("refuse") => {
            let reason = f
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("no reason given");
            eprintln!("crisp-worker: refused by pool: {reason}");
            return ExitCode::from(EXIT_REFUSED);
        }
        other => {
            eprintln!("crisp-worker: handshake failed: {other:?}");
            return ExitCode::from(EXIT_PROTOCOL);
        }
    }
    loop {
        let frame = match read_frame(stdin) {
            Ok(Some(f)) => f,
            // EOF: the pool is gone; exit quietly.
            Ok(None) => return ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("crisp-worker: frame read failed: {e}");
                return ExitCode::from(EXIT_PROTOCOL);
            }
        };
        match frame.get("type").and_then(Value::as_str) {
            Some("run") => {
                if let Err(code) = handle_run(&frame, out) {
                    return code;
                }
            }
            Some("shutdown") => return ExitCode::SUCCESS,
            other => {
                eprintln!("crisp-worker: unexpected frame type {other:?}");
                return ExitCode::from(EXIT_PROTOCOL);
            }
        }
    }
}

fn main() -> ExitCode {
    let mut stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    serve(&mut stdin, &mut stdout)
}
