//! `crisp-serve` — the fault-tolerant sweep daemon.
//!
//! Wraps the supervised sweep ([`crisp_bench::sweep`]) behind the
//! HTTP/1.1 job API in [`crisp_serve`]: admission-controlled submission
//! (bounded queue, 429 + `Retry-After`), idempotent job ids
//! (content-addressed over the cell set), graceful drain on
//! SIGTERM/SIGINT (in-flight cells checkpoint via the supervisor's stop
//! token, then exit 0), and crash recovery (on restart, every admitted
//! job without a result re-queues and resumes from its own manifest, so
//! pre-crash job ids poll through to byte-identical tables).
//!
//! ```text
//! Usage: crisp-serve [OPTIONS]
//!
//! Options:
//!   --data DIR           Data directory: job registry, endpoint file,
//!                        daemon lock (default crisp-serve-data)
//!   --addr HOST:PORT     Bind address; port 0 picks a free port and the
//!                        chosen endpoint lands in <data>/endpoint
//!                        (default 127.0.0.1:0)
//!   --store DIR          Shared result store (default <data>/store)
//!   --queue N            Admission cap: queued + running jobs (default 16)
//!   --max-conns N        Concurrent connection cap (default 32)
//!   --jobs N             Sweep worker threads per job (default 1)
//!   --workers N          Multi-process pool: fork/exec N crisp-worker
//!                        processes at startup and dispatch every
//!                        computed cell to them (crash containment,
//!                        heartbeat-renewed leases, poison quarantine).
//!                        Default 0 = simulate in-process.
//!   --deadline SECS      Per-attempt cell deadline
//!   --heartbeat MS       Supervisor heartbeat cadence (default 250)
//!   --checkpoint-interval CYCLES
//!                        Mid-cell machine checkpoints for finer resume
//!   --retry-after-ms MS  Backpressure hint in 429/503 responses
//!                        (default 2000; rounded up to whole seconds)
//!   --cell-delay-ms MS   Test hook: idle window at the start of every
//!                        computed cell (widens chaos-test windows)
//!   --quiet              Suppress per-job progress lines
//! ```
//!
//! Exit codes: `0` clean drain after SIGTERM/SIGINT, `2` usage error,
//! `5` startup failure (bind, lock, registry).

use crisp_bench::sweep::{build_jobs, run_supervised_sweep, sweep_spec, SweepConfig};
use crisp_bench::{all_targets, ExperimentScale};
use crisp_harness::json::Value;
use crisp_harness::{cell_key, EventSink, PoolOptions, WorkerPool};
use crisp_serve::{
    run_daemon, signal, DaemonConfig, ExecCtx, ExecResult, JobPlan, JobRecord, PrefetchTotals,
    SubmitRequest,
};
use crisp_sim::CancelToken;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const EXIT_USAGE: u8 = 2;
const EXIT_STARTUP: u8 = 5;

/// Daemon-side sweep knobs that are not part of a submission.
#[derive(Clone)]
struct ServeOptions {
    workers: usize,
    pool_workers: usize,
    deadline: Option<Duration>,
    heartbeat: Duration,
    checkpoint_interval: Option<u64>,
    cell_delay: Option<Duration>,
    progress: bool,
}

struct UsageError(String);

fn usage() {
    eprintln!(
        "usage: crisp-serve [--data DIR] [--addr HOST:PORT] [--store DIR] [--queue N]\n\
         \x20                  [--max-conns N] [--jobs N] [--workers N] [--deadline SECS]\n\
         \x20                  [--heartbeat MS]\n\
         \x20                  [--checkpoint-interval CYCLES] [--retry-after-ms MS]\n\
         \x20                  [--cell-delay-ms MS] [--quiet]"
    );
}

fn parse_args(args: &[String]) -> Result<(DaemonConfig, ServeOptions), UsageError> {
    let mut cfg = DaemonConfig::default();
    let mut opts = ServeOptions {
        workers: 1,
        pool_workers: 0,
        deadline: None,
        heartbeat: Duration::from_millis(250),
        checkpoint_interval: None,
        cell_delay: None,
        progress: true,
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => cfg.data_dir = PathBuf::from(value("--data", &mut it)?),
            "--addr" => cfg.addr = value("--addr", &mut it)?,
            "--store" => cfg.store_dir = Some(PathBuf::from(value("--store", &mut it)?)),
            "--queue" => {
                let v = value("--queue", &mut it)?;
                cfg.queue_cap = v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!("--queue expects a positive integer, got `{v}`"))
                })?;
            }
            "--max-conns" => {
                let v = value("--max-conns", &mut it)?;
                cfg.max_connections =
                    v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        UsageError(format!("--max-conns expects a positive integer, got `{v}`"))
                    })?;
            }
            "--jobs" => {
                let v = value("--jobs", &mut it)?;
                opts.workers = v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!("--jobs expects a positive integer, got `{v}`"))
                })?;
            }
            "--workers" => {
                let v = value("--workers", &mut it)?;
                opts.pool_workers =
                    v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        UsageError(format!("--workers expects a positive integer, got `{v}`"))
                    })?;
            }
            "--deadline" => {
                let v = value("--deadline", &mut it)?;
                let secs = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        UsageError(format!("--deadline expects positive seconds, got `{v}`"))
                    })?;
                opts.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--heartbeat" => {
                let v = value("--heartbeat", &mut it)?;
                let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!(
                        "--heartbeat expects positive milliseconds, got `{v}`"
                    ))
                })?;
                opts.heartbeat = Duration::from_millis(ms);
            }
            "--checkpoint-interval" => {
                let v = value("--checkpoint-interval", &mut it)?;
                opts.checkpoint_interval =
                    Some(v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        UsageError(format!(
                            "--checkpoint-interval expects a positive cycle count, got `{v}`"
                        ))
                    })?);
            }
            "--retry-after-ms" => {
                let v = value("--retry-after-ms", &mut it)?;
                let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!(
                        "--retry-after-ms expects positive milliseconds, got `{v}`"
                    ))
                })?;
                cfg.retry_after = Duration::from_millis(ms);
            }
            "--cell-delay-ms" => {
                let v = value("--cell-delay-ms", &mut it)?;
                let ms = v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                    UsageError(format!(
                        "--cell-delay-ms expects positive milliseconds, got `{v}`"
                    ))
                })?;
                opts.cell_delay = Some(Duration::from_millis(ms));
            }
            "--quiet" => opts.progress = false,
            other => return Err(UsageError(format!("unknown flag: {other}"))),
        }
    }
    Ok((cfg, opts))
}

fn parse_scale(scale: &str) -> Result<ExperimentScale, String> {
    match scale {
        "tiny" => Ok(ExperimentScale::Tiny),
        "fast" => Ok(ExperimentScale::Fast),
        "full" => Ok(ExperimentScale::Full),
        other => Err(format!("unknown scale `{other}` (expected tiny|fast|full)")),
    }
}

/// Rebuilds the sweep config a job's submission describes. Both the
/// planner and the executor go through this, so the cells the 202
/// acknowledged are exactly the cells the sweep runs — across restarts.
fn sweep_config(request: &SubmitRequest) -> Result<SweepConfig, String> {
    let scale = parse_scale(&request.scale)?;
    let known = all_targets();
    for t in &request.targets {
        if !known.contains(t) {
            return Err(format!(
                "unknown target `{t}` (expected one of: {})",
                known.join(", ")
            ));
        }
    }
    // Canonical order regardless of submission order, so reordered
    // target lists and workload filters coalesce onto the same job.
    let targets: Vec<String> = known
        .into_iter()
        .filter(|t| request.targets.contains(t))
        .collect();
    let workloads = request.workloads.clone().map(|mut w| {
        w.sort();
        w.dedup();
        w
    });
    // Validate the optional prefetcher override up front (against the
    // builtin registry), so a bad spec is a 400 — not a failed sweep.
    let prefetcher = match &request.prefetcher {
        Some(spec) => {
            let parsed: crisp_sim::PrefetcherSpec =
                spec.parse().map_err(|e| format!("bad `prefetcher`: {e}"))?;
            crisp_sim::PrefetcherRegistry::builtin()
                .build(&parsed)
                .map_err(|e| format!("bad `prefetcher`: {e}"))?;
            Some(parsed)
        }
        None => None,
    };
    Ok(SweepConfig {
        scale,
        targets,
        workloads,
        prefetcher,
        ..SweepConfig::default()
    })
}

fn plan(request: &SubmitRequest) -> Result<JobPlan, String> {
    let cfg = sweep_config(request)?;
    let jobs = build_jobs(&cfg);
    Ok(JobPlan {
        request: SubmitRequest {
            targets: cfg.targets.clone(),
            workloads: cfg.workloads.clone(),
            scale: request.scale.clone(),
            // Canonical spec string, so spelling variants of the same
            // zoo coalesce onto the same job id.
            prefetcher: cfg.prefetcher.map(|p| p.to_string()),
        },
        spec: sweep_spec(&cfg),
        cells: jobs.iter().map(|j| cell_key(&j.id, &j.spec)).collect(),
    })
}

fn exec(
    opts: &ServeOptions,
    pool: Option<&Arc<WorkerPool>>,
    record: &JobRecord,
    ctx: &ExecCtx,
) -> Result<ExecResult, String> {
    let mut cfg = sweep_config(&record.request)?;
    cfg.workers = opts.workers;
    cfg.deadline = opts.deadline;
    cfg.manifest = Some(ctx.manifest.clone());
    cfg.resume = ctx.resume;
    cfg.store = Some(ctx.store.clone());
    cfg.stop = Some(ctx.stop.clone());
    cfg.heartbeat = Some(opts.heartbeat);
    cfg.checkpoint_interval = opts.checkpoint_interval;
    cfg.cell_delay = opts.cell_delay;
    cfg.progress = opts.progress;
    cfg.pool = pool.cloned();
    // Supervisor and worker spans hang under the daemon's execute span.
    cfg.spans = Some(crisp_harness::SpanScope {
        path: ctx.spans.clone(),
        trace: ctx.trace.clone(),
        parent: ctx.span_parent,
    });
    // Live events land next to the job's manifest as append-only NDJSON
    // — exactly what GET /jobs/<id>/events tails. No fsync: the stream
    // is advisory telemetry, the manifest stays the durability record.
    let events_path = ctx.manifest.with_file_name("events.jsonl");
    cfg.events = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&events_path)
        .ok()
        .map(|file| {
            let file = Mutex::new(file);
            EventSink::new(move |event: &Value| {
                if let Ok(mut f) = file.lock() {
                    let _ = writeln!(f, "{}", event.encode());
                }
            })
        });
    let out = run_supervised_sweep(&cfg).map_err(|e| e.to_string())?;
    let report = &out.report;
    if report.crashed {
        // The injected-crash hook is not reachable here; a crashed
        // report means the manifest is unusable — fail the job.
        return Err("sweep crashed mid-manifest".to_string());
    }
    Ok(ExecResult {
        rendered: out.rendered,
        completed: report.completed(),
        failed: report.failed(),
        interrupted: report.interrupted,
        store_hits: report.store_hits,
        store_computed: report.store_computed,
        prefetch: prefetch_totals(report),
    })
}

/// Folds the job's `prefzoo` cell payloads into per-mechanism
/// issued/useful/late totals for the daemon's labeled Prometheus
/// families. Jobs without the prefzoo target report nothing.
fn prefetch_totals(report: &crisp_harness::SweepReport) -> Vec<PrefetchTotals> {
    let mechs = crisp_bench::cells::ZOO_MECHS;
    let mut totals: Vec<PrefetchTotals> = mechs
        .iter()
        .map(|m| PrefetchTotals {
            name: (*m).to_string(),
            ..PrefetchTotals::default()
        })
        .collect();
    let mut seen = false;
    for id in report.outcomes.keys() {
        if !id.starts_with("prefzoo/") {
            continue;
        }
        let Some(payload) = report.payload(id) else {
            continue;
        };
        // Eight fields per mechanism block; issued/useful/late sit at
        // offsets 5..=7 (see `cells::cell_prefzoo`).
        if payload.len() != mechs.len() * 8 {
            continue;
        }
        seen = true;
        for (i, t) in totals.iter_mut().enumerate() {
            t.issued += payload[i * 8 + 5] as u64;
            t.useful += payload[i * 8 + 6] as u64;
            t.late += payload[i * 8 + 7] as u64;
        }
    }
    if !seen {
        return Vec::new();
    }
    totals
}

/// Spawns the `--workers N` pool: the `crisp-worker` binary is expected
/// beside this one (same build), and must handshake with this binary's
/// own version and schema — version skew is refused at startup.
fn spawn_pool(workers: usize) -> Result<Arc<WorkerPool>, String> {
    let worker_bin = std::env::current_exe()
        .map_err(|e| format!("locate crisp-serve binary: {e}"))?
        .with_file_name("crisp-worker");
    let pool = WorkerPool::spawn(PoolOptions {
        worker_bin,
        workers,
        ..PoolOptions::default()
    })?;
    Ok(Arc::new(pool))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut cfg, opts) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(UsageError(msg)) => {
            eprintln!("crisp-serve: {msg}");
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let pool = if opts.pool_workers > 0 {
        match spawn_pool(opts.pool_workers) {
            Ok(pool) => {
                eprintln!(
                    "[crisp-serve] worker pool ready: {} process(es)",
                    opts.pool_workers
                );
                cfg.pool = Some(pool.status());
                Some(pool)
            }
            Err(e) => {
                eprintln!("crisp-serve: worker pool failed to start: {e}");
                return ExitCode::from(EXIT_STARTUP);
            }
        }
    } else {
        None
    };

    // SIGTERM/SIGINT → cancel the shutdown token → the daemon stops
    // admitting, drains in-flight cells through the supervisor's stop
    // path, fsyncs manifests, and run_daemon returns Ok.
    signal::install();
    let shutdown = CancelToken::new();
    signal::watch(shutdown.clone());

    let exec_opts = opts.clone();
    let exec_pool = pool.clone();
    let outcome = run_daemon(
        &cfg,
        &plan,
        &move |record: &JobRecord, ctx: &ExecCtx| exec(&exec_opts, exec_pool.as_ref(), record, ctx),
        &shutdown,
    );
    if let Some(pool) = pool {
        pool.shutdown();
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("crisp-serve: {e}");
            ExitCode::from(EXIT_STARTUP)
        }
    }
}
