//! Criterion microbenchmarks of the simulator substrates: branch
//! prediction, caches, DRAM, prefetchers, the age-matrix picker, the
//! functional emulator and the slicer.

use crisp_emu::Emulator;
use crisp_mem::{
    Bop, Cache, CacheConfig, Dram, DramConfig, Ghb, HierarchyConfig, MemoryHierarchy, Prefetcher,
};
use crisp_sim::{AgeMatrix, BitSet};
use crisp_slicer::{extract_slices, DepGraph, SliceConfig};
use crisp_uarch::{Btb, DirectionPredictor, Tage};
use crisp_workloads::{build, Input};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage");
    g.throughput(Throughput::Elements(1));
    let mut tage = Tage::default_config();
    let mut i = 0u64;
    g.bench_function("predict_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            let pc = (i >> 7) & 0xFFF;
            let taken = (i >> 20) & 3 != 0;
            let pred = tage.predict(black_box(pc));
            tage.update(pc, taken, pred);
        })
    });
    g.finish();
}

fn bench_btb(c: &mut Criterion) {
    let mut btb = Btb::new(8192, 4);
    for pc in 0..4096u64 {
        btb.insert(pc * 4, pc * 8, crisp_isa::CtrlKind::Jump);
    }
    let mut i = 0u64;
    c.bench_function("btb/lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(btb.lookup((i % 4096) * 4))
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let mut cache = Cache::new(CacheConfig::new(1024 * 1024, 16, 64));
    let mut i = 0u64;
    g.bench_function("llc_access_fill", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x61C8_8647);
            let line = (i >> 8) & 0xF_FFFF;
            if !cache.access(black_box(line)) {
                cache.fill(line, false);
            }
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = Dram::new(DramConfig::default());
    let mut now = 0u64;
    let mut i = 0u64;
    c.bench_function("dram/request", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            now += 30;
            black_box(dram.request(i & 0x3FFF_FFC0, now))
        })
    });
}

fn bench_bop(c: &mut Criterion) {
    let mut bop = Bop::new();
    let mut out = Vec::new();
    let mut line = 0u64;
    c.bench_function("bop/on_access", |b| {
        b.iter(|| {
            line += 3;
            out.clear();
            bop.on_access(black_box(line), 0, false, &mut out);
            bop.on_fill(line);
        })
    });
}

fn bench_age_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("age_matrix");
    for &size in &[96usize, 192] {
        let mut m = AgeMatrix::new(size);
        for s in 0..size {
            m.insert(s);
        }
        let mut ready = BitSet::new(size);
        for s in (0..size).step_by(3) {
            ready.set(s);
        }
        let mut prio = BitSet::new(size);
        for s in (0..size).step_by(9) {
            prio.set(s);
        }
        g.bench_function(format!("pick_crisp_{size}"), |b| {
            b.iter(|| black_box(m.pick_crisp(&ready, &prio)))
        });
    }
    g.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let w = build("mcf", Input::Train).expect("registered");
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("mcf_10k_insts", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&w.program, w.memory.clone());
            black_box(emu.run(10_000).len())
        })
    });
    g.finish();
}

fn bench_slicer(c: &mut Criterion) {
    let w = build("mcf", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(50_000);
    let mut g = c.benchmark_group("slicer");
    g.sample_size(20);
    g.bench_function("depgraph_50k", |b| {
        b.iter(|| black_box(DepGraph::build(&w.program, &trace)))
    });
    let graph = DepGraph::build(&w.program, &trace);
    // Slice the chase loads (found dynamically: loads with offset 0).
    let roots: Vec<u32> = w
        .program
        .iter()
        .filter(|(_, i)| i.is_load() && i.imm == 0)
        .map(|(pc, _)| pc)
        .collect();
    g.bench_function("extract_slices", |b| {
        b.iter(|| {
            black_box(extract_slices(
                &w.program,
                &trace,
                &graph,
                &roots,
                &SliceConfig::default(),
            ))
        })
    });
    g.finish();
}

fn bench_ghb(c: &mut Criterion) {
    let mut ghb = Ghb::new(512, 256, 4);
    let mut out = Vec::new();
    let mut line = 0u64;
    c.bench_function("ghb/on_access", |b| {
        b.iter(|| {
            line += 5;
            out.clear();
            ghb.on_access(black_box(line), 0x44, false, &mut out);
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(1));
    let mut mem = MemoryHierarchy::new(HierarchyConfig::skylake_like());
    let mut now = 0u64;
    let mut x = 0x2545F4914F6CDD1Du64;
    g.bench_function("load_mixed", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += 3;
            // 75% hot set (L1-resident), 25% cold.
            let addr = if x & 3 == 0 {
                (x >> 20) & 0x3FF_FFC0
            } else {
                0x500_0000 + (x & 0x3FC0)
            };
            black_box(mem.load(addr, 0x77, now))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tage,
    bench_btb,
    bench_cache,
    bench_dram,
    bench_bop,
    bench_ghb,
    bench_age_matrix,
    bench_emulator,
    bench_slicer,
    bench_hierarchy
);
criterion_main!(benches);
