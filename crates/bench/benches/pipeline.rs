//! Criterion end-to-end benchmarks: cycle-simulator throughput under each
//! scheduler, and the full CRISP pipeline.

use crisp_core::{run_crisp_pipeline, PipelineConfig};
use crisp_emu::Emulator;
use crisp_sim::{SchedulerKind, SimConfig, Simulator};
use crisp_workloads::{build, Input};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let w = build("pointer_chase", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(30_000);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for sched in [SchedulerKind::OldestReadyFirst, SchedulerKind::Crisp] {
        let critical = vec![true; w.program.len()];
        g.bench_function(format!("{sched:?}"), |b| {
            b.iter(|| {
                let sim = Simulator::new(SimConfig::skylake().with_scheduler(sched));
                let map = (sched == SchedulerKind::Crisp).then_some(critical.as_slice());
                black_box(sim.run(&w.program, &trace, map).cycles)
            })
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let cfg = PipelineConfig {
        train_instructions: 30_000,
        eval_instructions: 30_000,
        ..PipelineConfig::paper()
    };
    g.bench_function("crisp_end_to_end_mcf_30k", |b| {
        b.iter(|| {
            black_box(
                run_crisp_pipeline("mcf", &cfg)
                    .expect("pipeline")
                    .speedup_pct(),
            )
        })
    });
    g.finish();
}

fn bench_window_sweep(c: &mut Criterion) {
    // The Figure 9 inner operation: the same trace on different RS/ROB
    // windows (measures simulator scaling with structure sizes).
    let w = build("xhpcg", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(20_000);
    let mut g = c.benchmark_group("window");
    g.sample_size(10);
    for (rs, rob) in [(64usize, 180usize), (192, 448)] {
        g.bench_function(format!("rs{rs}_rob{rob}"), |b| {
            b.iter(|| {
                let sim = Simulator::new(SimConfig::with_window(rs, rob));
                black_box(sim.run(&w.program, &trace, None).cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_pipeline, bench_window_sweep);
criterion_main!(benches);
