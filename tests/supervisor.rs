//! Integration tests for the supervised experiment harness: crash/resume
//! convergence, fault isolation, salvage, and journal/backoff properties.

use crisp_bench::sweep::{run_supervised_sweep, SweepConfig};
use crisp_bench::ExperimentScale;
use crisp_harness::{AttemptOutcome, AttemptRecord, FailureClass, JobOutcome, RetryPolicy};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-supervisor-it-{tag}"));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_sweep(workloads: &[&str]) -> SweepConfig {
    SweepConfig {
        scale: ExperimentScale::Tiny,
        targets: vec!["fig11".to_string()],
        workloads: Some(workloads.iter().map(|s| s.to_string()).collect()),
        workers: 2,
        retry: RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
        },
        ..SweepConfig::default()
    }
}

/// The tentpole end-to-end property: start a sweep, trip a deterministic
/// crash point mid-manifest, resume from the journal, and get tables
/// byte-identical to an uninterrupted run.
#[test]
fn crash_then_resume_reproduces_byte_identical_tables() {
    let dir = scratch_dir("crash-resume");
    let manifest = dir.join("sweep.jsonl");
    let workloads = ["mcf", "lbm", "namd"];

    // Golden: uninterrupted run, no journal.
    let golden = run_supervised_sweep(&tiny_sweep(&workloads)).expect("golden sweep");
    assert!(!golden.report.crashed && !golden.degraded());
    assert!(golden.rendered.contains("Figure 11"));

    // Crashed run: the journal tears mid-record after the first result.
    let mut crash_cfg = tiny_sweep(&workloads);
    crash_cfg.manifest = Some(manifest.clone());
    crash_cfg.crash_after_records = Some(1);
    let crashed = run_supervised_sweep(&crash_cfg).expect("crash run");
    assert!(crashed.report.crashed, "crash point must fire");
    assert!(
        crashed.rendered.is_empty(),
        "a dead process renders nothing"
    );
    assert!(
        crashed.report.outcomes.len() < workloads.len(),
        "crash must leave unfinished jobs"
    );

    // Resume: only incomplete jobs re-run; output is byte-identical.
    let mut resume_cfg = tiny_sweep(&workloads);
    resume_cfg.manifest = Some(manifest.clone());
    resume_cfg.resume = true;
    let resumed = run_supervised_sweep(&resume_cfg).expect("resume run");
    assert!(!resumed.report.crashed && !resumed.degraded());
    assert_eq!(resumed.report.resumed, 1, "the journaled job is restored");
    assert_eq!(
        resumed.report.skipped_manifest_lines, 1,
        "exactly the torn tail is skipped"
    );
    assert_eq!(
        resumed.rendered, golden.rendered,
        "resumed tables must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected first-attempt panic is isolated, retried with backoff, and
/// the sweep completes clean — same final tables as a healthy run.
#[test]
fn injected_panic_is_retried_to_success() {
    let golden = run_supervised_sweep(&tiny_sweep(&["mcf"])).expect("golden sweep");

    let mut cfg = tiny_sweep(&["mcf"]);
    cfg.chaos.panic_once = vec!["fig11/mcf".to_string()];
    let out = run_supervised_sweep(&cfg).expect("chaos sweep");
    assert!(!out.degraded());
    match out.report.outcomes.get("fig11/mcf") {
        Some(JobOutcome::Completed {
            attempts, resumed, ..
        }) => {
            assert_eq!(*attempts, 2, "one panic, one clean retry");
            assert!(!resumed);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert_eq!(out.rendered, golden.rendered);
}

/// A persistent fault exhausts its retries but the sweep still completes,
/// salvaging the healthy cells into a DEGRADED report with a taxonomy.
#[test]
fn exhausted_retries_salvage_partial_results() {
    let mut cfg = tiny_sweep(&["mcf", "lbm"]);
    cfg.chaos.stall = vec!["fig11/lbm".to_string()];
    cfg.retry.max_retries = 1;
    let out = run_supervised_sweep(&cfg).expect("sweep survives the fault");
    assert!(out.degraded());
    assert_eq!(out.report.completed(), 1);
    match out.report.outcomes.get("fig11/lbm") {
        Some(JobOutcome::Failed {
            class: FailureClass::Deadlock,
            attempts: 2,
            ..
        }) => {}
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert!(
        out.rendered.contains("[DEGRADED (1/2 workloads)]"),
        "{}",
        out.rendered
    );
    assert!(
        out.rendered
            .contains("failure taxonomy (1/2 cells failed):"),
        "{}",
        out.rendered
    );
    assert!(
        out.rendered.contains("lbm: deadlock after 2 attempt(s)"),
        "{}",
        out.rendered
    );
    // The healthy cell's numbers are still in the table.
    assert!(out.rendered.contains("mcf"), "{}", out.rendered);
}

/// The per-job wall-clock deadline aborts through the engine's
/// cooperative poll and classifies as a (retryable) timeout.
#[test]
fn deadline_overrun_classifies_as_timeout() {
    let mut cfg = tiny_sweep(&["mcf"]);
    cfg.deadline = Some(Duration::from_millis(1));
    cfg.retry.max_retries = 0;
    let out = run_supervised_sweep(&cfg).expect("sweep survives the timeout");
    assert!(out.degraded());
    match out.report.outcomes.get("fig11/mcf") {
        Some(JobOutcome::Failed {
            class: FailureClass::Timeout,
            attempts: 1,
            error,
            ..
        }) => assert!(error.contains("deadline exceeded"), "{error}"),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

fn class_strategy() -> impl Strategy<Value = FailureClass> {
    (0u8..8).prop_map(|i| match i {
        0 => FailureClass::Panic,
        1 => FailureClass::Timeout,
        2 => FailureClass::Deadlock,
        3 => FailureClass::Cancelled,
        4 => FailureClass::CycleBudget,
        5 => FailureClass::Config,
        6 => FailureClass::UnknownWorkload,
        _ => FailureClass::Runtime,
    })
}

/// Strings over a charset that covers JSON's interesting cases: escapes,
/// quotes, control bytes, multi-byte UTF-8, and plain text.
fn string_strategy(max_len: usize) -> impl Strategy<Value = String> {
    const CHARSET: [char; 18] = [
        'a', 'z', '0', '9', '/', '_', '.', '-', ' ', '"', '\\', '\n', '\t', '\u{1}', 'µ', '数',
        '+', ':',
    ];
    proptest::collection::vec(0usize..CHARSET.len(), 0..max_len.max(1))
        .prop_map(|idxs| idxs.into_iter().map(|i| CHARSET[i]).collect())
}

/// Finite f64s spanning many magnitudes (non-finite bit patterns are
/// remapped — JSON cannot carry them and the journal never stores them).
fn f64_strategy() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            bits as f64 / 1e3
        }
    })
}

proptest! {
    /// The backoff schedule is bounded by the cap and the nominal delay is
    /// monotone non-decreasing; the jittered delay stays in
    /// [nominal/2, nominal] and replays deterministically.
    #[test]
    fn backoff_schedule_is_bounded_and_monotone(
        base_ms in 1u64..500,
        cap_ms in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_retries: 16,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(base_ms.max(cap_ms)),
        };
        let mut prev = Duration::ZERO;
        for attempt in 1..=16u32 {
            let nominal = policy.nominal_delay(attempt);
            prop_assert!(nominal <= policy.cap);
            prop_assert!(nominal >= prev, "nominal schedule must not shrink");
            prev = nominal;
            let jittered = policy.delay(attempt, seed);
            prop_assert!(jittered >= nominal / 2 && jittered <= nominal);
            prop_assert_eq!(jittered, policy.delay(attempt, seed));
        }
    }

    /// Journal records of any shape survive a round-trip through the
    /// JSONL serializer bit-exactly (including awkward floats and strings).
    #[test]
    fn journal_records_round_trip(
        job in string_strategy(24),
        hash_lo in any::<u64>(),
        hash_hi in any::<u64>(),
        attempt in 1u32..100,
        ok in any::<bool>(),
        with_provenance in any::<bool>(),
        payload in proptest::collection::vec(f64_strategy(), 0..12),
        class in class_strategy(),
        error in string_strategy(80),
    ) {
        let hash = (u128::from(hash_hi) << 64) | u128::from(hash_lo);
        let outcome = if ok {
            AttemptOutcome::Ok {
                payload,
                cached: with_provenance.then_some(hash ^ 1),
            }
        } else {
            AttemptOutcome::Fail {
                class,
                error,
                detail: None,
            }
        };
        let rec = AttemptRecord { job, hash, attempt, outcome };
        let decoded = AttemptRecord::decode(&rec.encode());
        prop_assert_eq!(decoded, Some(rec));
    }
}
