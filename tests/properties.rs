//! Property-based tests of cross-crate invariants (proptest).

use crisp_emu::{Emulator, Memory};
use crisp_isa::{AluOp, Cond, DynInst, Program, ProgramBuilder, Reg, Trace};
use crisp_sim::{AgeMatrix, BitSet, SchedulerKind, SimConfig, Simulator};
use crisp_slicer::{critical_path_filter, extract_slices, DepGraph, LatencyModel, SliceConfig};
use proptest::prelude::*;

/// Builds a random but well-formed straight-line-plus-loop program from a
/// compact op list, always ending in halt.
fn arb_program() -> impl Strategy<Value = Program> {
    // Each element: (kind 0..5, dst 1..28, src 1..28, imm small)
    proptest::collection::vec((0u8..5, 1u8..28, 1u8..28, 0i64..64), 5..60).prop_map(|ops| {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(29), 8); // loop counter
        let top = b.label();
        b.bind(top);
        for (kind, dst, src, imm) in ops {
            let (d, s) = (Reg::new(dst), Reg::new(src));
            match kind {
                0 => {
                    b.alu_ri(AluOp::Add, d, s, imm);
                }
                1 => {
                    b.alu_rr(AluOp::Xor, d, s, d);
                }
                2 => {
                    b.load(d, s, 0x1000 + imm * 8, 8);
                }
                3 => {
                    b.store(s, 0x2000 + imm * 8, d, 8);
                }
                _ => {
                    b.mul(d, s, d);
                }
            }
        }
        b.alu_ri(AluOp::Add, Reg::new(28), Reg::new(28), 1);
        b.alu_ri(AluOp::Sub, Reg::new(29), Reg::new(29), 1);
        b.branch(Cond::Ne, Reg::new(29), Reg::ZERO, top);
        b.halt();
        b.build()
    })
}

/// Random machine geometries spanning both valid and degenerate shapes
/// (zero widths, RS larger than ROB, missing ports, ...).
fn arb_sim_config() -> impl Strategy<Value = SimConfig> {
    (
        (0usize..8, 0usize..8, 0usize..12),
        (0usize..48, 0usize..48, 0usize..12, 0usize..12),
        (0usize..5, 0usize..4, 0usize..4, 0usize..16),
    )
        .prop_map(
            |((fetch, retire, issue), (rob, rs, lb, sb), (alu, lp, sp, fq))| {
                let mut c = SimConfig::skylake();
                c.fetch_width = fetch;
                c.retire_width = retire;
                c.issue_width = issue;
                c.rob_entries = rob;
                c.rs_entries = rs;
                c.load_buffer = lb;
                c.store_buffer = sb;
                c.alu_ports = alu;
                c.load_ports = lp;
                c.store_ports = sp;
                c.fetch_queue_entries = fq;
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The validator's contract: any `SimConfig` it accepts completes a
    /// 10k-instruction run without panicking (and retires everything); any
    /// config it rejects names the offending field with a message.
    #[test]
    fn validated_configs_always_complete(cfg in arb_sim_config(), p in arb_program()) {
        match cfg.validate() {
            Ok(()) => {
                let trace = Emulator::new(&p, Memory::new()).run(10_000);
                let res = Simulator::try_new(cfg)
                    .expect("validate() passed, try_new must agree")
                    .try_run(&p, &trace, None)
                    .expect("validated machine must complete the run");
                prop_assert_eq!(res.retired, trace.len() as u64);
            }
            Err(e) => {
                prop_assert!(!e.field.is_empty(), "rejection must name a field");
                prop_assert!(!e.message.is_empty(), "rejection must explain: {}", e);
            }
        }
    }

    /// The emulator is deterministic and traces have coherent control flow
    /// (each record's next_pc matches the following record's pc).
    #[test]
    fn emulation_is_deterministic_and_flow_coherent(p in arb_program()) {
        let t1 = Emulator::new(&p, Memory::new()).run(5_000);
        let t2 = Emulator::new(&p, Memory::new()).run(5_000);
        prop_assert_eq!(t1.as_slice(), t2.as_slice());
        for w in t1.as_slice().windows(2) {
            prop_assert_eq!(w[0].next_pc, w[1].pc);
        }
    }

    /// The simulator retires every trace exactly, under every scheduler,
    /// for arbitrary programs and arbitrary criticality maps.
    #[test]
    fn simulator_retires_all_work(p in arb_program(), crit_seed in any::<u64>()) {
        let trace = Emulator::new(&p, Memory::new()).run(3_000);
        let critical: Vec<bool> = (0..p.len())
            .map(|i| (crit_seed >> (i % 64)) & 1 == 1)
            .collect();
        for sched in [SchedulerKind::OldestReadyFirst, SchedulerKind::Crisp, SchedulerKind::RandomReady] {
            let res = Simulator::new(SimConfig::skylake().with_scheduler(sched))
                .run(&p, &trace, Some(&critical));
            prop_assert_eq!(res.retired, trace.len() as u64);
            prop_assert!(res.ipc() <= 6.0 + 1e-9);
        }
    }

    /// Slices always contain their root, never contain instructions that
    /// only consume the root, and critical-path filtering returns a
    /// subset that retains the root.
    #[test]
    fn slices_are_rooted_subsets(p in arb_program()) {
        let trace = Emulator::new(&p, Memory::new()).run(3_000);
        let graph = DepGraph::build(&p, &trace);
        // Every executed load is a root candidate.
        let mut roots: Vec<u32> = trace
            .iter()
            .filter(|r| p.inst(r.pc).is_load())
            .map(|r| r.pc)
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.truncate(4);
        let slices = extract_slices(&p, &trace, &graph, &roots, &SliceConfig::default());
        for s in &slices {
            if s.instances == 0 {
                prop_assert!(s.pcs.is_empty());
                continue;
            }
            prop_assert!(s.pcs.contains(&s.root));
            let kept = critical_path_filter(&p, s, &LatencyModel::default(), 0.8);
            prop_assert!(kept.contains(&s.root));
            for pc in &kept {
                prop_assert!(s.pcs.contains(pc), "filter invented pc {pc}");
            }
        }
    }

    /// Register-only slices are subsets of memory-aware slices.
    #[test]
    fn memory_deps_only_grow_slices(p in arb_program()) {
        let trace = Emulator::new(&p, Memory::new()).run(3_000);
        let graph = DepGraph::build(&p, &trace);
        let roots: Vec<u32> = trace
            .iter()
            .filter(|r| p.inst(r.pc).is_load())
            .map(|r| r.pc)
            .take(3)
            .collect();
        let full = extract_slices(&p, &trace, &graph, &roots, &SliceConfig::default());
        let reg_only_cfg = SliceConfig { follow_memory_deps: false, ..SliceConfig::default() };
        let reg_only = extract_slices(&p, &trace, &graph, &roots, &reg_only_cfg);
        for (f, r) in full.iter().zip(&reg_only) {
            for pc in &r.pcs {
                prop_assert!(f.pcs.contains(pc), "register slice escaped the full slice");
            }
        }
    }

    /// The age matrix always picks a ready slot, and the pick is the one
    /// inserted earliest among the ready set.
    #[test]
    fn age_matrix_picks_fifo(order in proptest::sample::subsequence((0..32usize).collect::<Vec<_>>(), 1..20),
                             ready_mask in any::<u32>()) {
        let mut m = AgeMatrix::new(32);
        for &slot in &order {
            m.insert(slot);
        }
        let mut ready = BitSet::new(32);
        let mut expected = None;
        for &slot in &order {
            if ready_mask & (1 << slot) != 0 {
                ready.set(slot);
                if expected.is_none() {
                    expected = Some(slot);
                }
            }
        }
        prop_assert_eq!(m.pick_oldest(&ready), expected);
    }

    /// Layout addresses are strictly increasing and the criticality prefix
    /// adds exactly `count` bytes.
    #[test]
    fn layout_prefix_accounting(p in arb_program(), seed in any::<u64>()) {
        let critical: Vec<bool> = (0..p.len()).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let base = p.layout(|_| false);
        let tagged = p.layout(|pc| critical[pc as usize]);
        let count = critical.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(tagged.code_bytes(), base.code_bytes() + count);
        for pc in 0..p.len() as u32 {
            prop_assert!(tagged.addr(pc) >= base.addr(pc));
        }
    }

    /// Trace statistics agree with a straightforward recount.
    #[test]
    fn trace_stats_recount(p in arb_program()) {
        let trace = Emulator::new(&p, Memory::new()).run(2_000);
        let stats = trace.stats(&p);
        let loads = trace.iter().filter(|r| p.inst(r.pc).is_load()).count() as u64;
        let stores = trace.iter().filter(|r| p.inst(r.pc).is_store()).count() as u64;
        prop_assert_eq!(stats.loads, loads);
        prop_assert_eq!(stats.stores, stores);
        prop_assert_eq!(stats.instructions, trace.len() as u64);
    }
}

/// Non-proptest sanity: an empty trace exercises every public stats path.
#[test]
fn empty_trace_edge_case() {
    let mut b = ProgramBuilder::new();
    b.halt();
    let p = b.build();
    let t = Trace::new();
    let res = Simulator::new(SimConfig::skylake()).run(&p, &t, None);
    assert_eq!(res.retired, 0);
    let stats = t.stats(&p);
    assert_eq!(stats.instructions, 0);
    let _ = DynInst::simple(0, 0);
}
