//! Property-based round-trip tests for the checkpoint `Snapshot` trait:
//! every implementor is driven into a randomized state, serialised,
//! restored into a freshly constructed instance, and re-serialised — the
//! two word vectors must be byte-identical, and (where the type is
//! executable) the restored instance must behave identically afterwards.

use crisp_bench::sweep::{run_supervised_sweep, SweepConfig};
use crisp_bench::ExperimentScale;
use crisp_emu::{Emulator, Memory};
use crisp_harness::JobOutcome;
use crisp_isa::{AluOp, Cond, CtrlKind, ProgramBuilder, Reg};
use crisp_mem::{
    Bop, Cache, CacheConfig, Dram, DramConfig, Ghb, GhbWidth, HierarchyConfig, MemoryHierarchy,
    Prefetcher, Sisb, Spp, StreamPrefetcher, StridePrefetcher,
};
use crisp_sim::{AgeMatrix, BitSet, CheckpointSink, SimConfig, SimSnapshot, Simulator, Snapshot};
use crisp_uarch::{Bimodal, Btb, DirectionPredictor, Gshare, IndirectPredictor, Ras, Tage};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Serialise `driven`, restore into `fresh`, and require the re-serialised
/// state to be byte-identical. Returns the words for further checks.
fn assert_roundtrip<T: Snapshot + ?Sized>(driven: &T, fresh: &mut T) -> Vec<u64> {
    let words = driven.snapshot_words();
    fresh
        .restore_words(&words)
        .expect("restore into a fresh instance");
    let again = fresh.snapshot_words();
    assert_eq!(again, words, "snapshot→restore→snapshot changed the words");
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direction predictors: random train streams, then byte-identical
    /// round-trips and lockstep agreement afterwards.
    #[test]
    fn direction_predictors_round_trip(
        ops in proptest::collection::vec((0u64..64, 0u8..2), 1..200),
    ) {
        let mut bimodal = Bimodal::new(512);
        let mut gshare = Gshare::new(512, 10);
        let mut tage = Tage::default_config();
        for &(slot, taken) in &ops {
            let pc = 0x1000 + slot * 4;
            let taken = taken == 1;
            let p = bimodal.predict(pc);
            bimodal.update(pc, taken, p);
            let p = gshare.predict(pc);
            gshare.update(pc, taken, p);
            let p = tage.predict(pc);
            tage.update(pc, taken, p);
        }
        assert_roundtrip(&bimodal, &mut Bimodal::new(512));
        assert_roundtrip(&gshare, &mut Gshare::new(512, 10));
        let mut tage2 = Tage::default_config();
        assert_roundtrip(&tage, &mut tage2);
        // The restored TAGE must predict identically from here on.
        for &(slot, taken) in ops.iter().rev() {
            let pc = 0x2000 + slot * 4;
            let a = tage.predict(pc);
            let b = tage2.predict(pc);
            prop_assert_eq!(a, b);
            tage.update(pc, taken == 1, a);
            tage2.update(pc, taken == 1, b);
        }
        prop_assert_eq!(tage.snapshot_words(), tage2.snapshot_words());
    }

    /// Target predictors: BTB (with LRU churn), RAS (push/pop mixes,
    /// including overflow/underflow) and the indirect predictor.
    #[test]
    fn target_predictors_round_trip(
        ops in proptest::collection::vec((0u64..96, 0u8..5), 1..200),
    ) {
        let kinds = [
            CtrlKind::CondBranch,
            CtrlKind::Jump,
            CtrlKind::IndirectJump,
            CtrlKind::Call,
            CtrlKind::Ret,
        ];
        let mut btb = Btb::new(32, 4);
        let mut ras = Ras::new(8);
        let mut ind = IndirectPredictor::new(64, 8);
        for &(slot, k) in &ops {
            let pc = 0x4000 + slot * 4;
            btb.insert(pc, pc + 64, kinds[k as usize]);
            btb.lookup(0x4000 + (slot / 2) * 4); // LRU churn + hit stats
            match k {
                0 => ras.push(pc),
                1 => {
                    ras.pop();
                }
                _ => ind.update(pc, pc + k as u64 * 8),
            }
        }
        assert_roundtrip(&btb, &mut Btb::new(32, 4));
        assert_roundtrip(&ras, &mut Ras::new(8));
        assert_roundtrip(&ind, &mut IndirectPredictor::new(64, 8));
    }

    /// Caches and DRAM: random access/fill/invalidate streams and
    /// timing-sensitive row-buffer state.
    #[test]
    fn cache_and_dram_round_trip(
        ops in proptest::collection::vec((0u64..128, 0u8..3), 1..200),
    ) {
        let cfg = CacheConfig::new(8 * 1024, 4, 64);
        let mut cache = Cache::new(cfg);
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        for &(line, op) in &ops {
            match op {
                0 => {
                    cache.access(line);
                }
                1 => {
                    cache.fill(line, line % 3 == 0);
                }
                _ => {
                    cache.invalidate(line);
                }
            }
            dram.request(line * 64, now);
            now += 1 + line % 7;
        }
        assert_roundtrip(&cache, &mut Cache::new(cfg));
        let mut dram2 = Dram::new(DramConfig::default());
        assert_roundtrip(&dram, &mut dram2);
        // Row-buffer and bank timing state must carry over: identical
        // future requests must see identical latencies.
        for &(line, _) in ops.iter().take(16) {
            prop_assert_eq!(
                dram.request(line * 256, now),
                dram2.request(line * 256, now)
            );
            now += 3;
        }
    }

    /// All four data prefetchers, driven through the common trait.
    #[test]
    fn prefetchers_round_trip(
        ops in proptest::collection::vec((0u64..256, 0u64..8, 0u8..2), 1..200),
    ) {
        let mut stream = StreamPrefetcher::new(8, 4, 2);
        let mut stride = StridePrefetcher::new(64, 2);
        let mut bop = Bop::new();
        let mut ghb = Ghb::new(64, 32, 4);
        let mut out = Vec::new();
        for &(line, pc_slot, hit) in &ops {
            let pc = 0x7000 + pc_slot * 4;
            let l1_hit = hit == 1;
            for p in [
                &mut stream as &mut dyn Prefetcher,
                &mut stride,
                &mut bop,
                &mut ghb,
            ] {
                out.clear();
                p.on_access(line, pc, l1_hit, &mut out);
            }
            if line % 5 == 0 {
                bop.on_fill(line);
            }
        }
        assert_roundtrip(&stream, &mut StreamPrefetcher::new(8, 4, 2));
        assert_roundtrip(&stride, &mut StridePrefetcher::new(64, 2));
        assert_roundtrip(&bop, &mut Bop::new());
        assert_roundtrip(&ghb, &mut Ghb::new(64, 32, 4));
    }

    /// The zoo competitors (GHB width-depth, SISB temporal streaming,
    /// SPP signature-path), driven through the common trait: random
    /// access/fill streams, then byte-identical round-trips and lockstep
    /// agreement afterwards.
    #[test]
    fn zoo_prefetchers_round_trip(
        ops in proptest::collection::vec((0u64..512, 0u64..8, 0u8..2), 1..200),
    ) {
        let mut ghbw = GhbWidth::new(128, 32, 4, 4, 2);
        let mut sisb = Sisb::new(64, 1024, 2);
        let mut spp = Spp::new(64, 512, 256, 6, 250);
        let mut out = Vec::new();
        for &(line, pc_slot, hit) in &ops {
            let pc = 0x9000 + pc_slot * 4;
            for p in [
                &mut ghbw as &mut dyn Prefetcher,
                &mut sisb,
                &mut spp,
            ] {
                out.clear();
                p.on_access(line, pc, hit == 1, &mut out);
            }
            if line % 3 == 0 {
                spp.on_fill(line);
            }
        }
        let mut ghbw2 = GhbWidth::new(128, 32, 4, 4, 2);
        let mut sisb2 = Sisb::new(64, 1024, 2);
        let mut spp2 = Spp::new(64, 512, 256, 6, 250);
        assert_roundtrip(&ghbw, &mut ghbw2);
        assert_roundtrip(&sisb, &mut sisb2);
        assert_roundtrip(&spp, &mut spp2);
        // Restored instances must keep predicting identically.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &(line, pc_slot, hit) in ops.iter().rev().take(32) {
            let pc = 0xa000 + pc_slot * 4;
            for (orig, fresh) in [
                (&mut ghbw as &mut dyn Prefetcher, &mut ghbw2 as &mut dyn Prefetcher),
                (&mut sisb, &mut sisb2),
                (&mut spp, &mut spp2),
            ] {
                a.clear();
                b.clear();
                orig.on_access(line, pc, hit == 1, &mut a);
                fresh.on_access(line, pc, hit == 1, &mut b);
                prop_assert_eq!(&a, &b, "{} diverged after restore", orig.name());
            }
        }
        prop_assert_eq!(spp.snapshot_words(), spp2.snapshot_words());
    }

    /// A hierarchy running a mixed zoo selection round-trips with all
    /// per-unit state and effectiveness counters intact.
    #[test]
    fn zoo_hierarchy_round_trips(
        ops in proptest::collection::vec((0u64..512, 0u8..3), 1..120),
    ) {
        let mut cfg = HierarchyConfig::skylake_like();
        cfg.prefetcher = "ghbw+spp:depth=4".parse().expect("zoo spec");
        let mut mem = MemoryHierarchy::new(cfg);
        let mut now = 0u64;
        for &(slot, op) in &ops {
            let addr = 0x30_0000 + slot * 64;
            match op {
                0 => {
                    mem.load(addr, 0x100 + slot * 4, now);
                }
                1 => {
                    mem.store(addr, 0x200 + slot * 4, now);
                }
                _ => {
                    mem.fetch(addr, now);
                }
            }
            now += 1 + slot % 13;
        }
        let mut fresh = MemoryHierarchy::new(cfg);
        assert_roundtrip(&mem, &mut fresh);
        prop_assert_eq!(mem.stats().prefetch_totals(), fresh.stats().prefetch_totals());
        for &(slot, _) in ops.iter().take(20) {
            let addr = 0x40_0000 + slot * 64;
            let a = mem.load(addr, 0x300, now);
            let b = fresh.load(addr, 0x300, now);
            prop_assert_eq!(a.ready_at(now), b.ready_at(now));
            now += 2;
        }
        prop_assert_eq!(mem.snapshot_words(), fresh.snapshot_words());
    }

    /// The full hierarchy: caches, MSHR-style inflight fills, prefetchers
    /// and DRAM behind one facade, including in-flight state mid-stream.
    #[test]
    fn memory_hierarchy_round_trips(
        ops in proptest::collection::vec((0u64..512, 0u8..3), 1..150),
    ) {
        let cfg = HierarchyConfig::skylake_like();
        let mut mem = MemoryHierarchy::new(cfg);
        let mut now = 0u64;
        for &(slot, op) in &ops {
            let addr = 0x10_0000 + slot * 64;
            match op {
                0 => {
                    mem.load(addr, 0x100 + slot * 4, now);
                }
                1 => {
                    mem.store(addr, 0x200 + slot * 4, now);
                }
                _ => {
                    mem.fetch(addr, now);
                }
            }
            now += 1 + slot % 13;
        }
        let mut fresh = MemoryHierarchy::new(cfg);
        assert_roundtrip(&mem, &mut fresh);
        // The restored hierarchy must keep timing identically.
        for &(slot, _) in ops.iter().take(20) {
            let addr = 0x20_0000 + slot * 64;
            let a = mem.load(addr, 0x300, now);
            let b = fresh.load(addr, 0x300, now);
            prop_assert_eq!(a.ready_at(now), b.ready_at(now));
            now += 2;
        }
        prop_assert_eq!(mem.snapshot_words(), fresh.snapshot_words());
    }

    /// Sparse memory plus full architectural state: pause a random
    /// program mid-flight, restore into a fresh emulator, and require the
    /// remainder of both executions to agree exactly.
    #[test]
    fn emulator_round_trips_mid_program(
        ops in proptest::collection::vec((0u8..4, 1u8..28, 1u8..28, 0i64..64), 4..60),
        pause in 1usize..40,
    ) {
        let mut b = ProgramBuilder::new();
        for &(kind, dst, src, imm) in &ops {
            let (d, s) = (Reg::new(dst), Reg::new(src));
            match kind {
                0 => {
                    b.alu_ri(AluOp::Add, d, s, imm);
                }
                1 => {
                    b.alu_rr(AluOp::Xor, d, s, d);
                }
                2 => {
                    b.load(d, s, 0x1000 + imm * 8, 8);
                }
                _ => {
                    b.store(s, 0x2000 + imm * 8, d, 8);
                }
            }
        }
        b.halt();
        let p = b.build();

        let mut emu = Emulator::new(&p, Memory::new());
        for _ in 0..pause.min(ops.len() / 2) {
            emu.step().expect("straight-line step");
        }
        let mut resumed = Emulator::new(&p, Memory::new());
        assert_roundtrip(&emu, &mut resumed);
        assert_roundtrip(emu.memory(), &mut Memory::new());

        let rest_a = emu.run(10_000);
        let rest_b = resumed.run(10_000);
        prop_assert_eq!(rest_a.as_slice(), rest_b.as_slice());
        prop_assert_eq!(emu.regs(), resumed.regs());
        prop_assert_eq!(emu.retired(), resumed.retired());
        prop_assert_eq!(
            emu.memory().snapshot_words(),
            resumed.memory().snapshot_words()
        );
    }

    /// Scheduler bookkeeping: BitSet and the age matrix under random
    /// insert/remove churn, checked via the trait object surface too.
    #[test]
    fn age_matrix_round_trips(
        ops in proptest::collection::vec((0usize..48, 0u8..2), 1..200),
    ) {
        let mut bits = BitSet::new(48);
        let mut age = AgeMatrix::new(48);
        let mut live = [false; 48];
        for &(slot, op) in &ops {
            if op == 0 {
                bits.set(slot);
                if !live[slot] {
                    age.insert(slot);
                    live[slot] = true;
                }
            } else {
                bits.clear(slot);
                if live[slot] {
                    age.remove(slot);
                    live[slot] = false;
                }
            }
        }
        assert_roundtrip(&bits, &mut BitSet::new(48));
        // Exercise the dyn-trait path the checkpoint writer uses.
        let fresh: &mut dyn Snapshot = &mut AgeMatrix::new(48);
        assert_roundtrip(&age as &dyn Snapshot, fresh);
    }

    /// End-to-end: a random program checkpointed mid-run must finish with
    /// byte-identical statistics when resumed from any captured snapshot.
    /// This drives every implementor at once — engine window state, BPU,
    /// hierarchy and the stats block — through the real emission path.
    #[test]
    fn simulator_restore_is_deterministic_on_random_programs(
        ops in proptest::collection::vec((0u8..5, 1u8..28, 1u8..28, 0i64..64), 5..40),
        interval in 50u64..400,
    ) {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(29), 12);
        let top = b.label();
        b.bind(top);
        for &(kind, dst, src, imm) in &ops {
            let (d, s) = (Reg::new(dst), Reg::new(src));
            match kind {
                0 => {
                    b.alu_ri(AluOp::Add, d, s, imm);
                }
                1 => {
                    b.alu_rr(AluOp::Xor, d, s, d);
                }
                2 => {
                    b.load(d, s, 0x1000 + imm * 8, 8);
                }
                3 => {
                    b.store(s, 0x2000 + imm * 8, d, 8);
                }
                _ => {
                    b.mul(d, s, d);
                }
            }
        }
        b.alu_ri(AluOp::Sub, Reg::new(29), Reg::new(29), 1);
        b.branch(Cond::Ne, Reg::new(29), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);

        let captured: Arc<Mutex<Vec<SimSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&captured);
        let mut cfg = SimConfig::skylake();
        cfg.cancel_check_interval = 32;
        cfg.checkpoint_interval = Some(interval);
        cfg.checkpoint_sink = Some(CheckpointSink::new(move |s| {
            store.lock().expect("sink lock").push(s.clone());
        }));
        let baseline = Simulator::new(cfg).run(&p, &t, None);
        let reference = baseline.snapshot_words();

        let snapshots = std::mem::take(&mut *captured.lock().expect("sink lock"));
        for snapshot in snapshots {
            let cycle = snapshot.cycle;
            let mut cfg = SimConfig::skylake();
            cfg.restore = Some(Arc::new(snapshot));
            let resumed = Simulator::new(cfg).run(&p, &t, None);
            prop_assert_eq!(
                resumed.snapshot_words(),
                reference.clone(),
                "resume from cycle {} diverged",
                cycle
            );
        }
    }

    /// Same end-to-end restore-determinism property, but with the full
    /// observability surface enabled — flight recorder, interval telemetry
    /// and stall attribution. Their state lives in the snapshot's `stats`
    /// section, so a resumed run must reproduce the straight-through run's
    /// event ring, sample log and stall table byte-for-byte.
    #[test]
    fn observability_state_survives_restore(
        ops in proptest::collection::vec((0u8..5, 1u8..28, 1u8..28, 0i64..64), 5..40),
        interval in 50u64..400,
    ) {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(29), 12);
        let top = b.label();
        b.bind(top);
        for &(kind, dst, src, imm) in &ops {
            let (d, s) = (Reg::new(dst), Reg::new(src));
            match kind {
                0 => {
                    b.alu_ri(AluOp::Add, d, s, imm);
                }
                1 => {
                    b.alu_rr(AluOp::Xor, d, s, d);
                }
                2 => {
                    b.load(d, s, 0x1000 + imm * 8, 8);
                }
                3 => {
                    b.store(s, 0x2000 + imm * 8, d, 8);
                }
                _ => {
                    b.mul(d, s, d);
                }
            }
        }
        b.alu_ri(AluOp::Sub, Reg::new(29), Reg::new(29), 1);
        b.branch(Cond::Ne, Reg::new(29), Reg::ZERO, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p, Memory::new()).run(100_000);

        let obs_cfg = || {
            let mut cfg = SimConfig::skylake();
            cfg.cancel_check_interval = 32;
            cfg.tracer_capacity = Some(256);
            cfg.telemetry_interval = Some(64);
            cfg.stall_attribution = true;
            cfg
        };
        let captured: Arc<Mutex<Vec<SimSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&captured);
        let mut cfg = obs_cfg();
        cfg.checkpoint_interval = Some(interval);
        cfg.checkpoint_sink = Some(CheckpointSink::new(move |s| {
            store.lock().expect("sink lock").push(s.clone());
        }));
        let baseline = Simulator::new(cfg).run(&p, &t, None);
        let reference = baseline.snapshot_words();

        let snapshots = std::mem::take(&mut *captured.lock().expect("sink lock"));
        for snapshot in snapshots {
            let cycle = snapshot.cycle;
            let mut cfg = obs_cfg();
            cfg.restore = Some(Arc::new(snapshot));
            let resumed = Simulator::new(cfg).run(&p, &t, None);
            prop_assert_eq!(
                resumed.tracer.events(),
                baseline.tracer.events(),
                "flight recorder diverged resuming from cycle {}",
                cycle
            );
            prop_assert_eq!(
                resumed.snapshot_words(),
                reference.clone(),
                "resume from cycle {} diverged",
                cycle
            );
        }
        // An obs-enabled snapshot must not restore into an obs-disabled
        // machine (and vice versa): enablement is part of the contract.
        let mut plain = SimConfig::skylake();
        plain.cancel_check_interval = 32;
        plain.checkpoint_interval = Some(interval);
        let captured: Arc<Mutex<Vec<SimSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
        let store = Arc::clone(&captured);
        plain.checkpoint_sink = Some(CheckpointSink::new(move |s| {
            store.lock().expect("sink lock").push(s.clone());
        }));
        Simulator::new(plain).run(&p, &t, None);
        let snapshots = std::mem::take(&mut *captured.lock().expect("sink lock"));
        if let Some(snapshot) = snapshots.into_iter().next() {
            let mut cfg = obs_cfg();
            cfg.restore = Some(Arc::new(snapshot));
            let err = Simulator::new(cfg).try_run(&p, &t, None).unwrap_err();
            prop_assert!(err.to_string().contains("tracer"), "got: {}", err);
        }
    }
}

/// The prefetcher-zoo figure is deterministic *through the store*: a
/// cold sweep computes every `prefzoo` cell, a warm re-run serves them
/// from the content-addressed store, and both the rendered matrix and
/// every payload word are bit-identical — the SimResult-derived numbers
/// survive the encode/decode round trip exactly.
#[test]
fn prefzoo_store_warm_rerun_is_byte_identical() {
    let dir = std::env::temp_dir().join("crisp-snap-prefzoo-warm");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.join("store");
    let cfg_for = |manifest: &str| SweepConfig {
        scale: ExperimentScale::Tiny,
        targets: vec!["prefzoo".to_string()],
        workloads: Some(vec!["pointer_chase".to_string()]),
        manifest: Some(dir.join(manifest)),
        store: Some(store.clone()),
        ..SweepConfig::default()
    };

    let cold = run_supervised_sweep(&cfg_for("cold.jsonl")).expect("cold sweep");
    assert_eq!(cold.report.store_computed, 1);
    let warm = run_supervised_sweep(&cfg_for("warm.jsonl")).expect("warm sweep");
    assert_eq!(warm.report.store_hits, 1);
    assert_eq!(
        warm.rendered, cold.rendered,
        "matrix must render identically"
    );

    for (job, outcome) in &cold.report.outcomes {
        let JobOutcome::Completed { payload: a, .. } = outcome else {
            panic!("{job} did not complete: {outcome:?}");
        };
        let Some(JobOutcome::Completed { payload: b, .. }) = warm.report.outcomes.get(job) else {
            panic!("{job} missing from warm run");
        };
        assert_eq!(a.len(), b.len(), "{job}: payload length changed");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{job}: payload word {i} not bit-identical ({x} vs {y})"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
