//! Property tests for the content-addressed result store: the entry codec
//! round-trips arbitrary cells bit-exactly, every single-bit flip anywhere
//! in an encoded entry is detected (never silently served), the key policy
//! separates every cache-relevant ingredient, and a warm in-process sweep
//! composes with journaling.

use crisp_bench::sweep::{run_supervised_sweep, SweepConfig};
use crisp_bench::ExperimentScale;
use crisp_harness::store::{decode_entry, encode_entry, CellEntry};
use crisp_harness::{cell_key, JobOutcome, ResultStoreConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-store-it-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Finite f64s spanning many magnitudes (payloads are simulator
/// statistics; the journal side of the pipeline cannot carry non-finite
/// values, so the store never sees them either).
fn f64_strategy() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            bits as f64 / 1e3
        }
    })
}

/// Specs over a charset covering the interesting cases: separators the
/// key material uses (`=`, `\n`), multi-byte UTF-8, and plain text.
fn spec_strategy(max_len: usize) -> impl Strategy<Value = String> {
    const CHARSET: [char; 16] = [
        'a', 'z', '0', '9', '/', '_', '.', '-', ' ', '=', '\n', ',', '[', ']', 'µ', '数',
    ];
    proptest::collection::vec(0usize..CHARSET.len(), 0..max_len.max(1))
        .prop_map(|idxs| idxs.into_iter().map(|i| CHARSET[i]).collect())
}

fn u128_strategy() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo))
}

fn entry_strategy() -> impl Strategy<Value = CellEntry> {
    (
        u128_strategy(),
        any::<u64>(),
        spec_strategy(120),
        proptest::collection::vec(f64_strategy(), 0..24),
    )
        .prop_map(|(key, created_unix, spec, payload)| CellEntry {
            key,
            created_unix,
            spec,
            payload,
        })
}

proptest! {
    /// Arbitrary entries survive encode → decode bit-exactly.
    #[test]
    fn entry_codec_round_trips(entry in entry_strategy()) {
        let bytes = encode_entry(&entry);
        let decoded = decode_entry(&bytes, Path::new("prop"), Some(entry.key))
            .expect("clean bytes decode");
        prop_assert_eq!(decoded.key, entry.key);
        prop_assert_eq!(decoded.created_unix, entry.created_unix);
        prop_assert_eq!(&decoded.spec, &entry.spec);
        prop_assert_eq!(decoded.payload.len(), entry.payload.len());
        for (a, b) in decoded.payload.iter().zip(entry.payload.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "payload must be bit-exact");
        }
    }

    /// Flipping any single bit anywhere in an encoded entry makes decoding
    /// fail — no single-bit corruption can ever be served as a result.
    #[test]
    fn any_single_bit_flip_is_detected(
        entry in entry_strategy(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_entry(&entry);
        let offset = (pos_seed % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << bit;
        prop_assert!(
            decode_entry(&bytes, Path::new("prop"), Some(entry.key)).is_err(),
            "flip at byte {} bit {} went undetected", offset, bit
        );
    }

    /// Truncating an encoded entry at any point is detected as torn.
    #[test]
    fn any_truncation_is_detected(
        entry in entry_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_entry(&entry);
        let keep = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            decode_entry(&bytes[..keep], Path::new("prop"), Some(entry.key)).is_err(),
            "truncation to {} of {} bytes went undetected", keep, bytes.len()
        );
    }

    /// The cell key separates job ids: ids that differ — here by a forced
    /// suffix — never share a key, and keying is deterministic.
    #[test]
    fn cell_keys_separate_distinct_cells(
        id in spec_strategy(24),
        suffix in spec_strategy(8),
        spec in spec_strategy(60),
    ) {
        let other = format!("{id}#{suffix}");
        prop_assert_ne!(cell_key(&id, &spec), cell_key(&other, &spec));
        prop_assert_eq!(cell_key(&id, &spec), cell_key(&id, &spec));
    }
}

/// In-process end-to-end: a journaled sweep populates the store, and the
/// warm re-run — also journaled, into a fresh manifest — serves every
/// cell from the store, marks outcomes as cached, and renders the same
/// tables.
#[test]
fn warm_journaled_sweep_is_fully_cached_and_identical() {
    let dir = scratch_dir("warm-journal");
    let store = dir.join("store");
    let cfg_for = |manifest: &str| SweepConfig {
        scale: ExperimentScale::Tiny,
        targets: vec!["fig11".to_string()],
        workloads: Some(vec!["mcf".to_string(), "lbm".to_string()]),
        workers: 2,
        manifest: Some(dir.join(manifest)),
        store: Some(store.clone()),
        ..SweepConfig::default()
    };

    let cold = run_supervised_sweep(&cfg_for("cold.jsonl")).expect("cold sweep");
    assert_eq!(cold.report.store_computed, 2);
    assert_eq!(cold.report.store_hits, 0);

    let warm = run_supervised_sweep(&cfg_for("warm.jsonl")).expect("warm sweep");
    assert_eq!(warm.report.store_hits, 2);
    assert_eq!(warm.report.store_computed, 0);
    assert_eq!(warm.rendered, cold.rendered);
    for (job, outcome) in &warm.report.outcomes {
        assert!(
            matches!(outcome, JobOutcome::Completed { cached: true, .. }),
            "{job} should be served from the store: {outcome:?}"
        );
    }

    // The warm manifest records provenance for both cells.
    let manifest = std::fs::read_to_string(dir.join("warm.jsonl")).expect("warm manifest");
    assert_eq!(
        manifest
            .lines()
            .filter(|l| l.contains("\"cached\""))
            .count(),
        2,
        "cache hits must carry provenance in the journal:\n{manifest}"
    );

    // Keying sanity: the config the sweep used points at the same store.
    let _ = ResultStoreConfig::new(&store);
    std::fs::remove_dir_all(&dir).ok();
}
