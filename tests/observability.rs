//! Observability integration tests: the Kanata pipeline-trace export
//! against a golden file, and the cross-check that the software profiler's
//! delinquent loads are the PCs the stall-attribution table blames.
//!
//! Regenerate the golden file after an intentional format or timing
//! change with:
//!
//! ```text
//! CRISP_BLESS=1 cargo test --test observability
//! ```

use crisp_core::{build, ClassifierConfig, Input, SimConfig};
use crisp_emu::Emulator;
use crisp_obs::{render_kanata, StallClass, TraceFilter};
use crisp_profile::classify_loads;
use crisp_sim::{SimResult, Simulator};
use std::path::PathBuf;

/// One deterministic traced run: emulate `n` instructions of `workload`
/// and simulate them on the Skylake model with the given obs switches.
fn traced_run(workload: &str, n: u64, tracer: bool, stalls: bool) -> SimResult {
    let w = build(workload, Input::Train).expect("workload");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(n);
    let mut cfg = SimConfig::skylake();
    if tracer {
        cfg.tracer_capacity = Some(1 << 16);
    }
    if stalls {
        cfg.stall_attribution = true;
        cfg.collect_pc_stats = true;
    }
    Simulator::try_new(cfg)
        .expect("config")
        .try_run(&w.program, &trace, None)
        .expect("simulation")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

#[test]
fn kanata_export_matches_the_golden_file() {
    let res = traced_run("pointer_chase", 2_000, true, false);
    // A mid-run cycle window keeps the golden file small while still
    // covering every command kind (I/L/S/R, C=/C, fill labels).
    let filter = TraceFilter {
        min_cycle: 200,
        max_cycle: 400,
        pc: None,
    };
    let rendered = render_kanata(&res.tracer.events(), &filter);
    assert!(rendered.starts_with(crisp_obs::KANATA_HEADER));
    assert!(rendered.contains("\nR\t"), "window covers retires");

    let path = golden_path("pointer_chase_window.kanata");
    if std::env::var_os("CRISP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file missing: regenerate with CRISP_BLESS=1 cargo test --test observability",
    );
    assert!(
        rendered == golden,
        "Kanata export diverged from tests/golden/pointer_chase_window.kanata \
         ({} vs {} lines). If the change is intentional, regenerate with \
         CRISP_BLESS=1 cargo test --test observability",
        rendered.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn pc_filter_restricts_the_export_to_one_instruction_stream() {
    let res = traced_run("pointer_chase", 2_000, true, false);
    let events = res.tracer.events();
    let pc = events
        .first()
        .map(|e| e.pc)
        .expect("tracer recorded events");
    let filtered = render_kanata(
        &events,
        &TraceFilter {
            pc: Some(pc),
            ..TraceFilter::default()
        },
    );
    let want = format!("pc={pc:#x}");
    for line in filtered.lines().filter(|l| l.contains("seq=")) {
        assert!(
            line.contains(&want),
            "foreign PC leaked into export: {line}"
        );
    }
}

/// The PCs the stall table blames for load stalls must be the PCs the
/// Section 3.2 software classifier flags as delinquent: stall attribution
/// is the simulated analogue of the profiling evidence CRISP consumes.
fn assert_delinquents_cover_top_stall_pcs(workload: &str, n: u64) {
    let res = traced_run(workload, n, false, true);
    let delinquent: Vec<u64> = classify_loads(&res, &ClassifierConfig::default())
        .iter()
        .map(|d| u64::from(d.pc))
        .collect();
    assert!(
        !delinquent.is_empty(),
        "{workload}: classifier found no delinquent loads"
    );
    let backend_total = res.stall_table.backend_cycles().max(1);
    let load_idx = [
        StallClass::LoadL1.index(),
        StallClass::LoadLlc.index(),
        StallClass::LoadDram.index(),
    ];
    let mut checked = 0;
    for row in res.stall_table.top_k(5) {
        let load_cycles: u64 = load_idx.iter().map(|&i| row.cycles[i]).sum();
        let share = row.backend as f64 / backend_total as f64;
        // Only judge rows that are both load-dominated and material.
        if load_cycles * 2 > row.backend && share > 0.10 {
            checked += 1;
            assert!(
                delinquent.contains(&row.pc),
                "{workload}: top stall PC {:#x} ({:.0}% of backend stalls, \
                 {} load cycles) missing from delinquent set {:?}",
                row.pc,
                100.0 * share,
                load_cycles,
                delinquent
                    .iter()
                    .map(|p| format!("{p:#x}"))
                    .collect::<Vec<_>>()
            );
        }
    }
    assert!(
        checked > 0,
        "{workload}: no load-dominated stall PC above 10% — workload too small?"
    );
}

#[test]
fn profiler_delinquents_cover_top_stall_pcs_on_pointer_chase() {
    assert_delinquents_cover_top_stall_pcs("pointer_chase", 60_000);
}

/// Tier-2: the same cross-check on mcf, the paper's headline workload.
/// Slow — run explicitly with `cargo test --test observability -- --ignored`.
#[test]
#[ignore = "tier-2: minutes-long full-window mcf run"]
fn profiler_delinquents_cover_top_stall_pcs_on_mcf() {
    assert_delinquents_cover_top_stall_pcs("mcf", 400_000);
}
