//! Fault-injection integration suite: corrupted, stale and truncated
//! inputs must degrade gracefully — complete without panicking, retire
//! every instruction, and (for advisory-hint damage) stay close to the
//! clean baseline's IPC. The criticality bit is a *hint*; no damage to it
//! may become a correctness problem.

use crisp_core::faults;
use crisp_core::{build, run_crisp_pipeline, Input, PipelineConfig, SchedulerKind, SimConfig};
use crisp_emu::Emulator;
use crisp_sim::{SimError, Simulator};
use crisp_slicer::CriticalityMap;

fn quick_cfg() -> PipelineConfig {
    PipelineConfig {
        train_instructions: 60_000,
        eval_instructions: 80_000,
        ..PipelineConfig::paper()
    }
}

/// A workload's eval binary, trace and clean-baseline result, shared by
/// the corruption scenarios.
struct Bench {
    program: crisp_isa::Program,
    trace: crisp_isa::Trace,
    clean_ipc: f64,
    retired: u64,
}

fn bench(name: &str) -> Bench {
    let w = build(name, Input::Ref).expect("registered workload");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(80_000);
    let sim = Simulator::new(SimConfig::skylake().with_scheduler(SchedulerKind::Crisp));
    let clean = sim
        .run_tolerant(&w.program, &trace, &vec![false; w.program.len()])
        .expect("clean run");
    Bench {
        program: w.program,
        trace,
        clean_ipc: clean.ipc(),
        retired: clean.retired,
    }
}

fn crisp_sim_for(b: &Bench) -> Simulator {
    let _ = b;
    Simulator::new(SimConfig::skylake().with_scheduler(SchedulerKind::Crisp))
}

/// A plausible "real" annotation to corrupt: the actual pipeline output.
fn genuine_map(name: &str) -> CriticalityMap {
    run_crisp_pipeline(name, &quick_cfg())
        .expect("pipeline runs")
        .map
}

#[test]
fn bit_flipped_maps_never_crash_and_retire_everything() {
    let b = bench("pointer_chase");
    let map = genuine_map("pointer_chase");
    let sim = crisp_sim_for(&b);
    for seed in 0..16 {
        let damaged = faults::flip_bits(&map, map.len() / 4 + 1, seed);
        let res = sim
            .run_tolerant(&b.program, &b.trace, damaged.as_slice())
            .unwrap_or_else(|e| panic!("seed {seed}: corrupted map broke the run: {e}"));
        assert_eq!(res.retired, b.retired, "seed {seed}: lost instructions");
    }
}

#[test]
fn randomly_remapped_tags_never_crash() {
    let b = bench("mcf");
    let map = genuine_map("mcf");
    let sim = crisp_sim_for(&b);
    for seed in 0..8 {
        let damaged = faults::remap_pcs(&map, seed);
        let res = sim
            .run_tolerant(&b.program, &b.trace, damaged.as_slice())
            .unwrap_or_else(|e| panic!("seed {seed}: remapped tags broke the run: {e}"));
        assert_eq!(res.retired, b.retired);
    }
}

#[test]
fn truncated_maps_never_crash() {
    let b = bench("pointer_chase");
    let map = genuine_map("pointer_chase");
    let sim = crisp_sim_for(&b);
    for len in [0, 1, map.len() / 2, map.len().saturating_sub(1)] {
        let cut = faults::truncate_map(&map, len);
        let res = sim
            .run_tolerant(&b.program, &b.trace, cut.as_slice())
            .unwrap_or_else(|e| panic!("len {len}: truncated map broke the run: {e}"));
        assert_eq!(res.retired, b.retired);
    }
}

#[test]
fn stale_profile_stays_within_five_percent_of_baseline() {
    // Tags computed for one binary forced onto a different one: wrong
    // hints may cost (or accidentally gain) a little performance but must
    // stay within the paper's noise band.
    let b = bench("mcf");
    let donor = genuine_map("pointer_chase"); // annotation of another binary
    let stale = faults::stale_map(&donor, b.program.len());
    let sim = crisp_sim_for(&b);
    let res = sim
        .run_tolerant(&b.program, &b.trace, stale.as_slice())
        .expect("stale map must not break the run");
    assert_eq!(res.retired, b.retired);
    let delta = (res.ipc() - b.clean_ipc).abs() / b.clean_ipc;
    assert!(
        delta < 0.05,
        "stale tags moved IPC by {:.2}% (clean {:.3}, stale {:.3})",
        delta * 100.0,
        b.clean_ipc,
        res.ipc()
    );
}

#[test]
fn stale_bits_beyond_the_program_are_ignored() {
    // A map longer than the binary: the excess bits must have zero effect,
    // cycle for cycle.
    let b = bench("pointer_chase");
    let map = genuine_map("pointer_chase");
    let sim = crisp_sim_for(&b);
    let mut long_bits = map.as_slice().to_vec();
    long_bits.extend(std::iter::repeat_n(true, 1000));
    let with_excess = sim
        .run_tolerant(&b.program, &b.trace, &long_bits)
        .expect("oversized map runs");
    let exact = sim
        .run_tolerant(&b.program, &b.trace, map.as_slice())
        .expect("exact map runs");
    assert_eq!(with_excess.cycles, exact.cycles);
    assert_eq!(with_excess.retired, exact.retired);
}

#[test]
fn empty_map_runs_cleanly() {
    let b = bench("pointer_chase");
    let sim = crisp_sim_for(&b);
    let res = sim
        .run_tolerant(&b.program, &b.trace, CriticalityMap::new(0).as_slice())
        .expect("empty map is the all-non-critical map");
    assert_eq!(res.retired, b.retired);
}

#[test]
fn truncated_traces_simulate_cleanly_at_any_cut() {
    let b = bench("pointer_chase");
    let sim = crisp_sim_for(&b);
    let map = vec![true; b.program.len()];
    for len in [0, 1, 7, b.trace.len() / 3, b.trace.len() - 1] {
        let cut = faults::truncate_trace(&b.trace, len);
        let res = sim
            .run_tolerant(&b.program, &cut, &map)
            .unwrap_or_else(|e| panic!("cut at {len}: truncated trace broke the run: {e}"));
        assert_eq!(res.retired, cut.len() as u64);
    }
}

#[test]
fn injected_scheduler_deadlock_is_caught_with_a_dump() {
    let b = bench("pointer_chase");
    let mut cfg = SimConfig::skylake();
    cfg.freeze_scheduler_after = Some(50);
    cfg.watchdog_cycles = 20_000;
    let err = Simulator::new(cfg)
        .try_run(&b.program, &b.trace, None)
        .expect_err("a frozen scheduler must trip the watchdog");
    let SimError::Deadlock(report) = err else {
        panic!("expected a deadlock report, got: {err}");
    };
    assert!(report.retired >= 50 && report.retired < b.retired);
    // The dump carries the forensic details the issue demands.
    let dump = report.to_string();
    assert!(dump.contains("simulator deadlock at cycle"));
    assert!(dump.contains("ROB head"));
    assert!(dump.contains("occupancy"));
    assert!(dump.contains("oldest unissued"));
}
