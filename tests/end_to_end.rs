//! End-to-end integration tests: the full CRISP FDO pipeline against the
//! paper's headline claims, on small simulation windows.

use crisp_core::{run_crisp_pipeline, run_ibda, ClassifierConfig, IbdaConfig, PipelineConfig};

fn small() -> PipelineConfig {
    PipelineConfig {
        train_instructions: 60_000,
        eval_instructions: 100_000,
        ..PipelineConfig::paper()
    }
}

#[test]
fn crisp_speeds_up_the_microbenchmark() {
    let r = run_crisp_pipeline("pointer_chase", &small()).expect("pipeline");
    assert!(
        r.speedup_pct() > 2.0,
        "pointer_chase speedup {:+.2}% (base {:.3} crisp {:.3})",
        r.speedup_pct(),
        r.baseline.ipc(),
        r.crisp.ipc()
    );
    // The confirmation metric of Section 5.2: fewer ROB-head stalls.
    assert!(r.crisp.rob_head_stall_cycles < r.baseline.rob_head_stall_cycles);
    // CRISP reorders accesses; it does not reduce misses (Section 5.2).
    let base_mpki = r.baseline.llc_load_mpki();
    let crisp_mpki = r.crisp.llc_load_mpki();
    assert!(
        (crisp_mpki - base_mpki).abs() / base_mpki < 0.25,
        "MPKI should be roughly unchanged: {base_mpki:.1} vs {crisp_mpki:.1}"
    );
}

#[test]
fn classifier_rejects_high_mlp_loads_on_bwaves() {
    // The Section 5.2 bwaves story: high MPKI executed at high MLP is not
    // performance-critical; the software classifier leaves it alone.
    let r = run_crisp_pipeline("bwaves", &small()).expect("pipeline");
    assert!(
        r.delinquent.is_empty(),
        "bwaves loads must be rejected by the MLP gate: {:?}",
        r.delinquent
    );
    assert_eq!(r.map.count(), 0);
}

#[test]
fn crisp_beats_ibda_on_memory_dependent_slices() {
    // namd: the delinquent gather's address passes through a stack spill.
    // CRISP slices through memory; IBDA cannot (Section 5.2).
    let cfg = small();
    let crisp = run_crisp_pipeline("namd", &cfg).expect("pipeline");
    let ibda = run_ibda("namd", IbdaConfig::ist_infinite(), &cfg).expect("ibda");
    let base = crisp.baseline.ipc();
    let crisp_pct = crisp.speedup_pct();
    let ibda_pct = (ibda.result.ipc() / base - 1.0) * 100.0;
    assert!(
        crisp_pct > ibda_pct + 0.3,
        "CRISP {crisp_pct:+.2}% should beat register-only IBDA {ibda_pct:+.2}% on namd"
    );
}

#[test]
fn footprint_overhead_is_one_byte_per_critical_instruction() {
    let r = run_crisp_pipeline("mcf", &small()).expect("pipeline");
    let f = &r.footprint;
    assert_eq!(
        f.static_bytes_annotated - f.static_bytes_base,
        f.critical_static,
        "exactly one extra byte per critical instruction"
    );
    assert_eq!(
        f.dynamic_bytes_annotated - f.dynamic_bytes_base,
        f.critical_dynamic
    );
    // The paper reports modest overheads (5.2% dynamic average).
    assert!(f.dynamic_overhead_pct() < 30.0);
}

#[test]
fn critical_budget_is_respected() {
    let cfg = PipelineConfig {
        classifier: ClassifierConfig::default().with_miss_threshold(0.0005),
        ..small()
    };
    let r = run_crisp_pipeline("memcached", &cfg).expect("pipeline");
    // Dynamic critical share stays under the 40% budget (Section 3.2).
    let total: u64 = r.footprint.dynamic_bytes_base; // proxy via bytes
    assert!(total > 0);
    let share = r.footprint.critical_dynamic as f64 / r.profile.retired.max(1) as f64;
    assert!(
        share <= 0.45,
        "dynamic critical share {share:.2} exceeds the budget"
    );
}

#[test]
fn branch_and_load_slices_combine_on_lbm() {
    use crisp_core::SliceMode;
    let cfg = small();
    let both = run_crisp_pipeline("lbm", &cfg).expect("pipeline");
    let loads = run_crisp_pipeline(
        "lbm",
        &PipelineConfig {
            mode: SliceMode::LoadsOnly,
            ..cfg.clone()
        },
    )
    .expect("pipeline");
    let branches = run_crisp_pipeline(
        "lbm",
        &PipelineConfig {
            mode: SliceMode::BranchesOnly,
            ..cfg
        },
    )
    .expect("pipeline");
    // Figure 8's lbm: the combination beats either family alone.
    assert!(
        both.speedup_pct() >= loads.speedup_pct() - 0.1,
        "both {:+.2} vs loads {:+.2}",
        both.speedup_pct(),
        loads.speedup_pct()
    );
    assert!(
        both.speedup_pct() >= branches.speedup_pct() - 0.1,
        "both {:+.2} vs branches {:+.2}",
        both.speedup_pct(),
        branches.speedup_pct()
    );
    assert!(
        both.speedup_pct() > 0.5,
        "lbm must gain from combined slices: {:+.2}",
        both.speedup_pct()
    );
}

#[test]
fn tagging_affects_the_instruction_footprint_in_the_simulator() {
    // The criticality prefix physically grows the code layout: the same
    // binary tagged vs untagged has different byte addresses.
    let r = run_crisp_pipeline("moses", &small()).expect("pipeline");
    assert!(r.map.count() > 0);
    assert!(r.footprint.static_overhead_pct() > 0.0);
}
