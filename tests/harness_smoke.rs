//! Smoke tests for the experiment harness: the figure-regeneration
//! functions produce well-formed reports (content checks only — the
//! full-scale numbers live in EXPERIMENTS.md).

use crisp_bench::table1;

#[test]
fn table1_reports_the_paper_configuration() {
    let t = table1();
    for needle in [
        "6-way",
        "224 entries",
        "96 entries (unified)",
        "TAGE",
        "8K entries",
        "BOP + Stream",
        "FDIP, 128 FTQ entries",
        "64 entries",  // load buffer
        "128 entries", // store buffer
        "32 KiB, 8-way",
        "DDR4-2400, 1 channel",
        "6-oldest-ready-instructions-first",
    ] {
        assert!(t.contains(needle), "Table 1 is missing {needle:?}:\n{t}");
    }
}

#[test]
fn experiment_scale_is_copyable_and_comparable() {
    use crisp_bench::ExperimentScale;
    let a = ExperimentScale::Fast;
    let b = a;
    assert_eq!(a, b);
    assert_ne!(ExperimentScale::Fast, ExperimentScale::Full);
}
