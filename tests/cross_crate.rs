//! Cross-crate integration: emulator traces drive the simulator
//! faithfully, and every layer is deterministic.

use crisp_core::{build, Input};
use crisp_emu::Emulator;
use crisp_sim::{SchedulerKind, SimConfig, Simulator};

#[test]
fn simulator_retires_exactly_the_trace() {
    for name in ["mcf", "xhpcg", "memcached", "gcc"] {
        let w = build(name, Input::Train).expect("registered");
        let trace = Emulator::new(&w.program, w.memory.clone()).run(30_000);
        let res = Simulator::new(SimConfig::skylake()).run(&w.program, &trace, None);
        assert_eq!(res.retired, trace.len() as u64, "{name}");
        assert!(res.cycles > 0);
        assert!(res.ipc() <= SimConfig::skylake().retire_width as f64);
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run_once = || {
        let w = build("deepsjeng", Input::Ref).expect("registered");
        let trace = Emulator::new(&w.program, w.memory.clone()).run(20_000);
        let res = Simulator::new(SimConfig::skylake()).run(&w.program, &trace, None);
        (
            res.cycles,
            res.retired,
            res.cond_mispredicts,
            res.mem.load_llc_misses,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn schedulers_agree_on_architectural_work() {
    // Scheduling changes timing, never the retired instruction stream.
    let w = build("xz", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(20_000);
    let critical = vec![true; w.program.len()];
    for sched in [
        SchedulerKind::OldestReadyFirst,
        SchedulerKind::Crisp,
        SchedulerKind::RandomReady,
    ] {
        let res = Simulator::new(SimConfig::skylake().with_scheduler(sched)).run(
            &w.program,
            &trace,
            Some(&critical),
        );
        assert_eq!(res.retired, trace.len() as u64, "{sched:?}");
    }
}

#[test]
fn perfect_branch_prediction_never_hurts() {
    let w = build("memcached", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(25_000);
    let noisy = Simulator::new(SimConfig::skylake()).run(&w.program, &trace, None);
    let mut cfg = SimConfig::skylake();
    cfg.perfect_branch_prediction = true;
    let perfect = Simulator::new(cfg).run(&w.program, &trace, None);
    assert!(perfect.cycles <= noisy.cycles);
    assert_eq!(perfect.cond_mispredicts, 0);
}

#[test]
fn window_size_monotonically_helps_the_baseline() {
    // Sanity for the Figure 9 sweep: bigger RS/ROB never slows the
    // baseline core down on a memory-bound workload.
    let w = build("xhpcg", Input::Train).expect("registered");
    let trace = Emulator::new(&w.program, w.memory.clone()).run(25_000);
    let mut last_cycles = u64::MAX;
    for (rs, rob) in [(64, 180), (96, 224), (192, 448)] {
        let res = Simulator::new(SimConfig::with_window(rs, rob)).run(&w.program, &trace, None);
        assert!(
            res.cycles <= last_cycles.saturating_add(last_cycles / 50),
            "window ({rs},{rob}) regressed: {} vs {last_cycles}",
            res.cycles
        );
        last_cycles = res.cycles;
    }
}

#[test]
fn all_workloads_simulate_cleanly_under_crisp_with_everything_tagged() {
    // Robustness: an adversarial all-critical map must not deadlock or
    // change architectural behaviour anywhere.
    for name in crisp_core::all_names() {
        let w = build(name, Input::Train).expect("registered");
        let trace = Emulator::new(&w.program, w.memory.clone()).run(10_000);
        let critical = vec![true; w.program.len()];
        let res = Simulator::new(SimConfig::skylake().with_scheduler(SchedulerKind::Crisp)).run(
            &w.program,
            &trace,
            Some(&critical),
        );
        assert_eq!(res.retired, trace.len() as u64, "{name}");
    }
}
