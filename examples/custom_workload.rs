//! Build your own workload against the public API: a binary-tree search
//! kernel, traced with the emulator, profiled, sliced and scheduled with
//! CRISP — without using the built-in workload registry.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use crisp_emu::{Emulator, Memory};
use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};
use crisp_profile::{amat_map, classify_loads, ClassifierConfig};
use crisp_sim::{SchedulerKind, SimConfig, Simulator};
use crisp_slicer::{
    critical_path_filter, extract_slices, Annotator, DepGraph, LatencyModel, SliceConfig,
};
use std::collections::HashMap;

fn main() {
    let r = Reg::new;

    // A random binary search tree: 64 KiB nodes of {left, right, key}.
    let nodes = 1u64 << 15;
    let base = 0x100_0000u64;
    let stride = 4096u64; // one node per page: hard to prefetch
    let mut mem = Memory::new();
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..nodes {
        let addr = base + i * stride;
        mem.write_u64(addr, base + (rng() % nodes) * stride); // left
        mem.write_u64(addr + 8, base + (rng() % nodes) * stride); // right
        mem.write_u64(addr + 16, rng()); // key
    }

    // Search loop: descend left/right on the key's low bit mixed with a
    // probe counter (so revisited nodes take fresh arms and the walk roams
    // the whole tree), with a dense scoring block per visited node.
    let mut b = ProgramBuilder::new();
    let (cur, key, t1, t2, probe) = (r(1), r(2), r(4), r(5), r(7));
    let accs = [r(24), r(25), r(26), r(27)];
    b.li(cur, base as i64);
    let top = b.label();
    b.bind(top);
    b.load(key, cur, 16, 8); // key (delinquent)
    b.alu_ri(AluOp::Add, probe, probe, 1);
    for e in 0..20i64 {
        b.load(t1, Reg::ZERO, 0x10_000 + 8 * e, 8);
        b.mul(t1, t1, key);
        b.alu_rr(AluOp::Xor, t2, t2, t1);
        b.alu_rr(
            AluOp::Add,
            accs[(e % 4) as usize],
            accs[(e % 4) as usize],
            t2,
        );
    }
    b.alu_rr(AluOp::Xor, t1, key, probe);
    b.alu_ri(AluOp::And, t1, t1, 1);
    let go_right = b.label();
    let descend = b.label();
    b.branch(Cond::Ne, t1, Reg::ZERO, go_right);
    b.load(cur, cur, 0, 8); // left child (delinquent)
    b.jump(descend);
    b.bind(go_right);
    b.load(cur, cur, 8, 8); // right child (delinquent)
    b.bind(descend);
    b.branch(Cond::Ne, cur, Reg::ZERO, top);
    b.halt();
    let program = b.build();

    // Trace, profile, classify, slice, annotate, evaluate.
    let trace = Emulator::new(&program, mem).run(200_000);
    let mut cfg = SimConfig::skylake();
    cfg.collect_pc_stats = true;
    let profile = Simulator::new(cfg.clone()).run(&program, &trace, None);
    println!(
        "profile: IPC {:.3}, LLC load MPKI {:.1}, branch MPKI {:.2}",
        profile.ipc(),
        profile.llc_load_mpki(),
        profile.branch_mpki()
    );

    let delinquent = classify_loads(&profile, &ClassifierConfig::default());
    println!(
        "delinquent loads: {:?}",
        delinquent.iter().map(|d| d.pc).collect::<Vec<_>>()
    );

    let graph = DepGraph::build(&program, &trace);
    let roots: Vec<u32> = delinquent.iter().map(|d| d.pc).collect();
    let slices = extract_slices(&program, &trace, &graph, &roots, &SliceConfig::default());
    let model = LatencyModel::new(amat_map(&profile), 4.0);
    let filtered: Vec<_> = slices
        .iter()
        .map(|s| critical_path_filter(&program, s, &model, 0.75))
        .collect();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for rec in &trace {
        *counts.entry(rec.pc).or_insert(0) += 1;
    }
    let map = Annotator::default().annotate(&program, &filtered, &counts);
    println!("tagged {} instructions", map.count());

    cfg.collect_pc_stats = false;
    let baseline = Simulator::new(cfg.clone()).run(&program, &trace, None);
    let crisp = Simulator::new(cfg.with_scheduler(SchedulerKind::Crisp)).run(
        &program,
        &trace,
        Some(map.as_slice()),
    );
    println!(
        "baseline IPC {:.3} -> CRISP IPC {:.3} ({:+.2}%)",
        baseline.ipc(),
        crisp.ipc(),
        crisp.speedup_over(&baseline)
    );
}
