//! The Figure 10 experiment in miniature: sweep the miss-contribution
//! threshold `T` on one workload and watch the classifier's selection and
//! the speedup change — the "flexible software heuristics" the paper
//! argues hardware cannot provide.
//!
//! ```text
//! cargo run --release --example threshold_tuning [workload]
//! ```

use crisp_core::{run_crisp_pipeline, ClassifierConfig, PipelineConfig, Table};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let mut t = Table::new(vec![
        "T (miss share)",
        "delinquent loads",
        "tagged insts",
        "speedup %",
    ]);
    for thr in [0.20, 0.05, 0.01, 0.002] {
        let cfg = PipelineConfig {
            classifier: ClassifierConfig::default().with_miss_threshold(thr),
            ..PipelineConfig::quick()
        };
        let r = run_crisp_pipeline(&name, &cfg).unwrap_or_else(|e| panic!("{e}"));
        t.row(vec![
            format!("{:.1}%", thr * 100.0),
            format!("{}", r.delinquent.len()),
            format!("{}", r.map.count()),
            format!("{:+.2}", r.speedup_pct()),
        ]);
    }
    println!("Miss-contribution threshold sweep on `{name}` (paper Figure 10):\n");
    println!("{t}");
    println!("Lower T admits more loads; past the sweet spot the scheduler");
    println!("has too little non-critical work to deprioritise (Section 3.2).");
}
