//! The Figure 2/3 walk-through: build the paper's linked-list kernel,
//! extract the delinquent load's backward slice, and show (a) that
//! forward-only consumers stay out of the slice, (b) that a dependence
//! through memory is followed, and (c) what critical-path filtering drops.
//!
//! ```text
//! cargo run --release --example slice_walkthrough
//! ```

use crisp_emu::{Emulator, Memory};
use crisp_isa::{AluOp, Cond, ProgramBuilder, Reg};
use crisp_slicer::{critical_path_filter, extract_slices, DepGraph, LatencyModel, SliceConfig};
use std::collections::HashMap;

fn main() {
    let r = Reg::new;

    // The Figure 2 kernel, with one twist: the node address passes
    // through a stack spill, the case hardware IBDA cannot see.
    let mut mem = Memory::new();
    for i in 0..256u64 {
        let base = 0x10_0000 + i * 64;
        mem.write_u64(base, 0x10_0000 + ((i * 37 + 1) % 256) * 64);
        mem.write_u64(base + 8, i);
    }

    let mut b = ProgramBuilder::new();
    let (cur, val, acc, sp) = (r(1), r(2), r(3), Reg::SP);
    b.li(sp, 0x8000); // 0
    b.li(cur, 0x10_0000); // 1
    let top = b.label();
    b.bind(top);
    b.load(val, cur, 8, 8); // 2: val = cur->val
    b.alu_rr(AluOp::Add, acc, acc, val); // 3: consumer (NOT in slice)
    b.store(sp, 0, cur, 8); // 4: spill cur
    b.li(cur, 0); // 5: clobber
    b.load(cur, sp, 0, 8); // 6: reload through memory
    let chase = b.load(cur, cur, 0, 8); // 7: cur = cur->next  <- delinquent
    b.branch(Cond::Ne, cur, Reg::ZERO, top); // 8
    b.halt(); // 9
    let program = b.build();

    println!("== program ==");
    for (pc, inst) in program.iter() {
        println!("  {pc:>2}: {inst}");
    }

    let trace = Emulator::new(&program, mem).run(5_000);
    let graph = DepGraph::build(&program, &trace);
    let slices = extract_slices(&program, &trace, &graph, &[chase], &SliceConfig::default());
    let slice = &slices[0];

    let mut pcs: Vec<u32> = slice.pcs.iter().copied().collect();
    pcs.sort_unstable();
    println!("\n== backward slice of the delinquent load (pc {chase}) ==");
    println!("slice pcs: {pcs:?}");
    println!("mean dynamic slice length: {:.1}", slice.mean_dynamic_len);
    assert!(
        !slice.pcs.contains(&3),
        "the accumulate is a forward consumer"
    );
    assert!(
        slice.pcs.contains(&4) && slice.pcs.contains(&6),
        "spill and reload are reached through the memory dependence"
    );
    println!("- forward consumer (pc 3) correctly excluded");
    println!("- spill store (pc 4) and reload (pc 6) reached THROUGH MEMORY");

    // Register-only slicing (what IBDA sees) loses the chain at the reload.
    let reg_only = SliceConfig {
        follow_memory_deps: false,
        ..SliceConfig::default()
    };
    let blind = &extract_slices(&program, &trace, &graph, &[chase], &reg_only)[0];
    assert!(!blind.pcs.contains(&4));
    println!("- register-only slicing (IBDA's view) misses the spill store");

    // Critical-path filtering with a measured AMAT for the chase load.
    let model = LatencyModel::new(HashMap::from([(chase, 180.0)]), 4.0);
    let kept = critical_path_filter(&program, slice, &model, 0.75);
    let mut kept_v: Vec<u32> = kept.into_iter().collect();
    kept_v.sort_unstable();
    println!("- after critical-path filtering (keep >= 75% of max path): {kept_v:?}");
}
