//! Quickstart: run the full CRISP pipeline on the paper's motivating
//! pointer-chase microbenchmark and print what each stage produced.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crisp_core::{run_crisp_pipeline, PipelineConfig, Table};

fn main() {
    let cfg = PipelineConfig::quick();
    println!("== CRISP pipeline on `pointer_chase` (Figure 1/2 microbenchmark) ==\n");
    let r = run_crisp_pipeline("pointer_chase", &cfg).expect("registered workload");

    println!(
        "-- profiling (train input, {} instructions) --",
        cfg.train_instructions
    );
    println!(
        "baseline IPC {:.3}, load LLC MPKI {:.1}, branch MPKI {:.2}\n",
        r.profile.ipc(),
        r.profile.llc_load_mpki(),
        r.profile.branch_mpki()
    );

    println!("-- classified delinquent loads (Section 3.2) --");
    let mut t = Table::new(vec!["pc", "LLC miss ratio", "AMAT", "MLP", "miss share"]);
    for d in &r.delinquent {
        t.row(vec![
            format!("{}", d.pc),
            format!("{:.2}", d.llc_miss_ratio),
            format!("{:.0}", d.amat),
            format!("{:.1}", d.mlp),
            format!("{:.2}", d.miss_contribution),
        ]);
    }
    println!("{t}");

    println!("-- annotation (Sections 3.3-3.5) --");
    println!(
        "tagged {} static instructions ({:.1}% of the binary); \
         dynamic footprint overhead {:.2}%\n",
        r.map.count(),
        r.map.static_ratio() * 100.0,
        r.footprint.dynamic_overhead_pct()
    );

    println!(
        "-- evaluation (ref input, {} instructions) --",
        cfg.eval_instructions
    );
    println!(
        "OOO baseline IPC: {:.3}\nCRISP IPC:        {:.3}\nspeedup:          {:+.2}%",
        r.baseline.ipc(),
        r.crisp.ipc(),
        r.speedup_pct()
    );
    println!(
        "ROB-head stall cycles: {} -> {} (the paper's confirmation metric)",
        r.baseline.rob_head_stall_cycles, r.crisp.rob_head_stall_cycles
    );
}
