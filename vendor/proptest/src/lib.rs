//! A minimal, dependency-free stand-in for the `proptest` crate, vendored
//! so the workspace builds without network access. It keeps the same
//! surface the tests use — [`Strategy`], `prop_map`, range/tuple/vec
//! strategies, [`arbitrary::any`], [`sample::subsequence`], the
//! [`proptest!`] macro and `prop_assert*` — but samples deterministically:
//! each test function derives its RNG stream from its own name, so runs
//! are reproducible without a persisted regression file.
//!
//! There is no shrinking. On failure the standard assert message plus the
//! deterministic case index is enough to replay: the same binary re-runs
//! the identical sequence.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration (only the knobs the tests set).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    /// SplitMix64 stream used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a reproducible stream from a test name.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name keeps distinct tests on distinct streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike the real crate there is no value tree: `generate` yields a
    /// plain value and failures do not shrink.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for `any::<T>()` (full-range uniform values).
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Uniform strategy over the whole domain of `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy yielding order-preserving subsequences of a base vector.
    #[derive(Clone, Debug)]
    pub struct Subsequence<T: Clone> {
        base: Vec<T>,
        size: Range<usize>,
    }

    /// Picks a subsequence of `base` (original order preserved) whose
    /// length falls in `size`, clamped to the base length.
    pub fn subsequence<T: Clone>(base: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        assert!(size.start < size.end, "cannot sample empty size range");
        assert!(
            size.start <= base.len(),
            "minimum subsequence length exceeds base vector length"
        );
        Subsequence { base, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let hi = self.size.end.min(self.base.len() + 1);
            let span = (hi - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            // Floyd-style sample of `len` distinct indices, then sort to
            // preserve the base order.
            let mut picked: Vec<usize> = Vec::with_capacity(len);
            let n = self.base.len();
            for j in (n - len)..n {
                let t = rng.below((j + 1) as u64) as usize;
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.base[i].clone()).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that repeats `body` for `config.cases` generated
/// inputs, on a stream derived deterministically from the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                );
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic stream)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        let strat = (0u8..5, 1u8..28, 0i64..64);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 5);
            assert!((1..28).contains(&b));
            assert!((0..64).contains(&c));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec");
        let strat = crate::collection::vec(0u8..10, 5..60);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..60).contains(&v.len()));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_distinctness() {
        let mut rng = TestRng::deterministic("subseq");
        let base: Vec<usize> = (0..32).collect();
        let strat = crate::sample::subsequence(base, 1..20);
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            for w in v.windows(2) {
                assert!(w[0] < w[1], "order not preserved: {v:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself compiles, loops, and binds multiple args.
        #[test]
        fn macro_smoke(x in 0u32..100, y in any::<u64>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(y, y);
        }
    }
}
