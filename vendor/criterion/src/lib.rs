//! A minimal, dependency-free stand-in for the `criterion` crate, vendored
//! so the workspace builds without network access. It keeps the macro and
//! builder surface the benches use (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`) and measures wall-clock time with `std::time::Instant`.
//!
//! Under `cargo bench` (cargo passes `--bench`) each benchmark is timed
//! over an adaptive iteration count targeting ~200ms. In any other
//! invocation — notably `cargo test`, which executes `harness = false`
//! bench targets — each benchmark body runs once, as a smoke test, so the
//! tier-1 suite stays fast. There are no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    report: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// One iteration per benchmark: compile-and-run smoke coverage.
    Smoke,
    /// Adaptive iteration count targeting a fixed measurement window.
    Measure,
}

/// One measurement: total wall time over `iters` iterations.
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                let start = Instant::now();
                black_box(routine());
                *self.report = Some(Sample {
                    iters: 1,
                    elapsed: start.elapsed(),
                });
            }
            Mode::Measure => {
                // Warm up, then scale the batch so the measured window is
                // at least ~200ms (or 1M iterations, whichever is first).
                black_box(routine());
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(200) || iters >= 1_000_000 {
                        *self.report = Some(Sample { iters, elapsed });
                        return;
                    }
                    iters = iters.saturating_mul(4);
                }
            }
        }
    }
}

/// Top-level benchmark driver (a registry-free stand-in for the real one).
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(self.mode, &id.into(), None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work unit for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes its own batches.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.mode, &id, self.throughput, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(mode: Mode, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut report = None;
    let mut b = Bencher {
        mode,
        report: &mut report,
    };
    f(&mut b);
    let Some(sample) = report else {
        println!("bench {id:<40} (no measurement: body never called iter)");
        return;
    };
    let per_iter = sample.elapsed.as_nanos() as f64 / sample.iters as f64;
    match (mode, throughput) {
        (Mode::Smoke, _) => {
            println!("bench {id:<40} smoke ok ({per_iter:.0} ns)");
        }
        (Mode::Measure, None) => {
            println!("bench {id:<40} {per_iter:>12.1} ns/iter");
        }
        (Mode::Measure, Some(Throughput::Elements(n))) => {
            let rate = n as f64 / (per_iter * 1e-9);
            println!("bench {id:<40} {per_iter:>12.1} ns/iter {rate:>14.0} elem/s");
        }
        (Mode::Measure, Some(Throughput::Bytes(n))) => {
            let rate = n as f64 / (per_iter * 1e-9);
            println!("bench {id:<40} {per_iter:>12.1} ns/iter {rate:>14.0} B/s");
        }
    }
}

/// Declares a callable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        let mut acc = 0u64;
        g.bench_function("accumulate", |b| {
            b.iter(|| {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(acc)
            })
        });
        g.finish();
        c.bench_function(format!("loose_{}", 1), |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn harness_runs_in_smoke_mode() {
        let mut c = Criterion { mode: Mode::Smoke };
        sample_bench(&mut c);
    }

    #[test]
    fn group_macro_compiles() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
