//! A minimal, dependency-free stand-in for the `rand` crate, vendored so
//! the workspace builds without network access. It implements exactly the
//! deterministic subset the workload builders rely on: [`SmallRng`]
//! (xoshiro256**), [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. Streams are fixed forever — workload construction
//! must stay bit-reproducible across toolchains.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types a generator can produce uniformly (the `Standard` distribution of
/// the real crate, collapsed to what this workspace samples).
pub trait Uniform: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Uniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Uniform for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a generator can sample from.
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw from `[0, n)` by rejection (unbiased).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of the real `Rng`).
pub trait Rng: RngCore {
    /// Draws one uniformly-distributed value of type `T`.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of the real `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — a deterministic stand-in
    /// for the real crate's `SmallRng` (which is explicitly not
    /// reproducible across versions; this one is, by construction).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 stream expands the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..=17);
            assert!((3..=17).contains(&v));
            let w = r.gen_range(5u64..9);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
